"""Cross-process seed stability and merge-order properties.

Within-process determinism (same args -> equal tuples) lives in
test_chaos.py.  This module guards the stronger contract the sharded
control plane rests on: a seeded timeline must come out *identical in a
different interpreter process* — i.e. no generator may depend on hash
randomization, set/dict iteration of unordered inputs, or anything else
PYTHONHASHSEED perturbs — and :func:`merge_timeline` must order
same-instant events by the typed PRIORITY regardless of how the streams
were sliced.
"""

import os
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
    merge_timeline,
    timeline_key,
)

# ---------------------------------------------------------------------- #
# cross-process seed stability
# ---------------------------------------------------------------------- #

#: Runs in a child interpreter with a different PYTHONHASHSEED; prints a
#: canonical rendering of every generator's output for one seed.
_CHILD_SCRIPT = """\
import sys
from repro.ops.chaos import (
    mtbf_failures, slo_renegotiations, spot_preemption_waves, tenant_churn,
)
from repro.ops.events import merge_timeline

seed = int(sys.argv[1])
streams = (
    mtbf_failures(horizon_s=50_000, mtbf_s=4_000, seed=seed, repair_s=2_000),
    spot_preemption_waves(
        horizon_s=50_000, every_s=9_000, fraction=0.1, seed=seed,
        restore_delay_s=3_000,
    ),
    tenant_churn(
        horizon_s=50_000, arrivals=6, departures=4, seed=seed,
        base_ids=("svc-a", "svc-b", "svc-c"),
    ),
    slo_renegotiations(
        [("svc-a", 100.0), ("svc-b", 250.0), ("svc-c", 40.0)],
        horizon_s=50_000, count=3, seed=seed,
    ),
)
for event in merge_timeline(*streams):
    print(repr(event))
"""


def _timeline_render(seed, hashseed):
    env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(seed)],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout


def test_timelines_identical_across_processes():
    """Two interpreters with *different* hash randomization must render
    the same seeded timeline byte-for-byte."""
    a = _timeline_render(seed=20240802, hashseed=0)
    b = _timeline_render(seed=20240802, hashseed=918273645)
    assert a and a == b


def test_process_rendering_matches_in_process():
    """The child's canonical rendering equals this process's own."""
    from repro.ops.chaos import (
        mtbf_failures,
        slo_renegotiations,
        spot_preemption_waves,
        tenant_churn,
    )

    timeline = merge_timeline(
        mtbf_failures(horizon_s=50_000, mtbf_s=4_000, seed=7, repair_s=2_000),
        spot_preemption_waves(
            horizon_s=50_000, every_s=9_000, fraction=0.1, seed=7,
            restore_delay_s=3_000,
        ),
        tenant_churn(
            horizon_s=50_000, arrivals=6, departures=4, seed=7,
            base_ids=("svc-a", "svc-b", "svc-c"),
        ),
        slo_renegotiations(
            [("svc-a", 100.0), ("svc-b", 250.0), ("svc-c", 40.0)],
            horizon_s=50_000, count=3, seed=7,
        ),
    )
    ours = "".join(f"{event!r}\n" for event in timeline)
    assert _timeline_render(seed=7, hashseed=424242) == ours


def test_ops_run_stable_across_processes():
    """The registered S12 package (base fleet + timeline) renders
    identically in a child with different hash randomization."""
    script = (
        "from repro.scenarios.ops import ops_run\n"
        "run = ops_run('S12')\n"
        "print(len(run.services))\n"
        "for event in run.timeline:\n"
        "    print(repr(event))\n"
    )
    renders = []
    for hashseed in (1, 777):
        env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        renders.append(out.stdout)
    assert renders[0] and renders[0] == renders[1]


# ---------------------------------------------------------------------- #
# merge_timeline ordering properties
# ---------------------------------------------------------------------- #

#: A pool of same-instant-capable events: times collide on a tiny grid so
#: hypothesis exercises the PRIORITY tie-break constantly.
_times = st.sampled_from([0.0, 10.0, 10.0, 25.0, 60.0])
_names = st.sampled_from(["svc-a", "svc-b", "svc-c", "svc-d"])

_events = st.one_of(
    st.builds(ServiceDeparture, time_s=_times, service_id=_names),
    st.builds(
        ServiceArrival, time_s=_times, service_id=_names,
        model=st.just("resnet-50"),
        request_rate=st.floats(min_value=1.0, max_value=500.0),
        slo_latency_ms=st.floats(min_value=20.0, max_value=400.0),
    ),
    st.builds(
        SloChange, time_s=_times, service_id=_names,
        slo_latency_ms=st.floats(min_value=20.0, max_value=400.0),
    ),
    st.builds(
        RateEpoch, time_s=_times, service_id=_names,
        rate=st.floats(min_value=0.0, max_value=500.0),
    ),
    st.builds(
        GpuFailure, time_s=_times,
        event_id=st.sampled_from(["f1", "f2", "f3"]),
        draw=st.floats(min_value=0.0, max_value=0.99),
    ),
    st.builds(
        GpuRecovery, time_s=_times,
        ref=st.sampled_from(["f1", "f2", "f3"]),
    ),
    st.builds(
        SpotPreemptionWave, time_s=_times,
        event_id=st.sampled_from(["w1", "w2"]),
        fraction=st.floats(min_value=0.01, max_value=1.0),
        draw=st.floats(min_value=0.0, max_value=0.99),
    ),
)


@given(
    st.lists(_events, min_size=2, max_size=24, unique_by=timeline_key),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_merge_is_slicing_invariant_and_priority_ordered(events, rnd):
    """However the events are shuffled and sliced into streams, the merge
    is the one canonical timeline; same-instant runs apply departures
    before arrivals before SLO/rate changes before recoveries before
    failures before preemption waves (ascending PRIORITY, then token)."""
    canonical = tuple(sorted(events, key=timeline_key))

    shuffled = list(events)
    rnd.shuffle(shuffled)
    cut_a = rnd.randint(0, len(shuffled))
    cut_b = rnd.randint(cut_a, len(shuffled))
    merged = merge_timeline(
        shuffled[:cut_a], shuffled[cut_a:cut_b], shuffled[cut_b:]
    )
    assert merged == canonical

    keys = [timeline_key(e) for e in merged]
    assert keys == sorted(keys)
    for earlier, later in zip(merged, merged[1:]):
        if earlier.time_s == later.time_s:
            assert (earlier.PRIORITY, earlier.sort_token) <= (
                later.PRIORITY, later.sort_token
            )
