"""Event model: validation and the deterministic timeline order."""

import pytest

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
    merge_timeline,
    timeline_key,
)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RateEpoch(time_s=-1.0, service_id="a", rate=10.0)

    def test_rate_epoch_needs_service(self):
        with pytest.raises(ValueError):
            RateEpoch(time_s=0.0, service_id="", rate=10.0)

    def test_arrival_needs_positive_load(self):
        with pytest.raises(ValueError):
            ServiceArrival(
                time_s=0.0, service_id="t", model="resnet-50",
                request_rate=0.0, slo_latency_ms=100.0,
            )

    def test_failure_draw_bounds(self):
        with pytest.raises(ValueError):
            GpuFailure(time_s=0.0, event_id="f0", draw=1.0)

    def test_recovery_needs_target(self):
        with pytest.raises(ValueError):
            GpuRecovery(time_s=0.0)

    def test_wave_fraction_bounds(self):
        with pytest.raises(ValueError):
            SpotPreemptionWave(time_s=0.0, event_id="w", fraction=0.0)


class TestOrdering:
    def test_time_dominates(self):
        a = RateEpoch(time_s=5.0, service_id="a", rate=1.0)
        b = GpuFailure(time_s=1.0, event_id="f", draw=0.5)
        assert merge_timeline([a], [b]) == (b, a)

    def test_same_instant_priority_order(self):
        """Departures free capacity before arrivals; service-level changes
        land before GPU-level disturbances; recoveries before failures."""
        t = 10.0
        events = [
            SpotPreemptionWave(time_s=t, event_id="w", fraction=0.5),
            GpuFailure(time_s=t, event_id="f", draw=0.1),
            GpuRecovery(time_s=t, ref="f-1"),
            RateEpoch(time_s=t, service_id="a", rate=5.0),
            SloChange(time_s=t, service_id="a", slo_latency_ms=100.0),
            ServiceArrival(
                time_s=t, service_id="n", model="resnet-50",
                request_rate=10.0, slo_latency_ms=200.0,
            ),
            ServiceDeparture(time_s=t, service_id="d"),
        ]
        merged = merge_timeline(events)
        kinds = [e.kind for e in merged]
        assert kinds == [
            "ServiceDeparture",
            "ServiceArrival",
            "SloChange",
            "RateEpoch",
            "GpuRecovery",
            "GpuFailure",
            "SpotPreemptionWave",
        ]

    def test_same_type_ties_break_on_token(self):
        a = RateEpoch(time_s=1.0, service_id="b", rate=1.0)
        b = RateEpoch(time_s=1.0, service_id="a", rate=2.0)
        assert merge_timeline([a, b]) == (b, a)

    def test_key_is_total_and_stable(self):
        events = [
            GpuFailure(time_s=2.0, event_id=f"f-{i}", draw=0.0)
            for i in reversed(range(5))
        ]
        merged = merge_timeline(events)
        assert [e.event_id for e in merged] == [f"f-{i}" for i in range(5)]
        assert sorted(merged, key=timeline_key) == list(merged)
