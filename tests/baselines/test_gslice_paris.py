"""Unit tests for the GSLICE and PARIS+ELSA baselines (Table I rows)."""

import pytest

from repro.baselines import GSlice, InfeasibleScheduleError, ParisElsa, make_framework
from repro.core.parvagpu import ParvaGPU
from repro.core.service import Service
from repro.metrics import internal_slack
from repro.scenarios import scenario_services


@pytest.fixture(scope="module")
def gslice(profiles):
    return GSlice(profiles)


@pytest.fixture(scope="module")
def paris(profiles):
    return ParisElsa(profiles)


class TestGSlice:
    def test_factory_name(self, profiles):
        assert make_framework("gslice", profiles).name == "gslice"

    def test_single_gpu_only(self, gslice):
        placement = gslice.schedule(scenario_services("S1"))
        assert placement.num_gpus == 1

    def test_fails_beyond_one_gpu(self, gslice):
        """Table I: no high-request-rate support."""
        for scenario in ("S2", "S5", "S6"):
            with pytest.raises(InfeasibleScheduleError):
                gslice.schedule(scenario_services(scenario))

    def test_quota_sums_within_gpu(self, gslice):
        placement = gslice.schedule(scenario_services("S1"))
        total = sum(s.gpcs for _, s in placement.iter_segments())
        assert total <= 7.0 + 1e-9

    def test_self_tuning_prevents_slack(self, gslice, profiles):
        """Table I: internal slack prevention — GSLICE right-sizes, so its
        slack beats the non-tuning MPS baselines on the same workload."""
        from repro.baselines import IGniter

        services = scenario_services("S1")
        g = gslice.schedule(services)
        i = IGniter(profiles).schedule(scenario_services("S1"))
        assert internal_slack(g) < internal_slack(i)

    def test_capacity_covers_demand(self, gslice):
        services = scenario_services("S1")
        placement = gslice.schedule(services)
        for svc in services:
            assert placement.total_capacity(svc.id) >= svc.request_rate

    def test_empty_service_list(self, gslice):
        with pytest.raises(InfeasibleScheduleError):
            gslice.schedule([])


class TestParisElsa:
    def test_factory_name(self, profiles):
        assert make_framework("paris-elsa", profiles).name == "paris-elsa"

    def test_placement_is_legal_mig(self, paris):
        for scenario in ("S1", "S2"):
            paris.schedule(scenario_services(scenario)).validate()

    def test_no_mps(self, paris):
        placement = paris.schedule(scenario_services("S1"))
        assert all(s.num_processes == 1 for _, s in placement.iter_segments())

    def test_handles_high_rates_by_replication(self, paris):
        placement = paris.schedule(scenario_services("S5"))
        assert placement.num_gpus > 5

    def test_tail_sizing_overallocates(self, paris, profiles):
        """Sizing to the batch tail costs GPUs vs ParvaGPU (Table I: no
        internal-slack prevention)."""
        p = paris.schedule(scenario_services("S2"))
        parva = ParvaGPU(profiles).schedule(scenario_services("S2"))
        assert p.num_gpus >= parva.num_gpus
        assert internal_slack(p) > internal_slack(parva)

    def test_capacity_covers_demand(self, paris):
        services = scenario_services("S2")
        placement = paris.schedule(services)
        for svc in services:
            assert placement.total_capacity(svc.id) >= svc.request_rate * (1 - 1e-9)

    def test_impossible_slo(self, paris):
        svc = Service("t", "bert-large", slo_latency_ms=3.0, request_rate=10)
        with pytest.raises(InfeasibleScheduleError):
            paris.schedule([svc])
