"""Unit tests for the gpulet baseline."""

import pytest

from repro.baselines.gpulet import Gpulet
from repro.core.service import Service


@pytest.fixture(scope="module")
def gpulet(profiles):
    return Gpulet(profiles)


class TestStructuralRules:
    def test_at_most_two_partitions_per_gpu(self, gpulet, profiles):
        services = [
            Service(f"s{i}", m, slo_latency_ms=300, request_rate=400)
            for i, m in enumerate(
                ["resnet-50", "vgg-16", "densenet-121", "inceptionv3",
                 "mobilenetv2", "resnet-101"]
            )
        ]
        placement = gpulet.schedule(services)
        for plan in placement.gpus:
            assert len(plan.segments) <= 2

    def test_partitions_are_mps(self, gpulet, make_service):
        placement = gpulet.schedule([make_service(rate=600.0)])
        assert all(s.kind == "mps" for _, s in placement.iter_segments())

    def test_second_partition_takes_all_remaining(self, gpulet):
        services = [
            Service("big", "vgg-16", slo_latency_ms=400, request_rate=800),
            Service("small", "mobilenetv2", slo_latency_ms=200, request_rate=100),
        ]
        placement = gpulet.schedule(services)
        for plan in placement.gpus:
            if len(plan.segments) == 2:
                # the pair uses the whole GPU: no external fragmentation
                assert sum(s.gpcs for s in plan.segments) == pytest.approx(7.0)

    def test_high_rate_splits_into_multiple_gpulets(self, gpulet, make_service):
        svc = make_service(rate=9000.0)
        placement = gpulet.schedule([svc])
        assert len(placement.segments_of(svc.id)) >= 3

    def test_served_rates_cover_demand(self, gpulet, make_service):
        svc = make_service(rate=5000.0)
        placement = gpulet.schedule([svc])
        served = sum(s.served_rate for s in placement.segments_of(svc.id))
        assert served == pytest.approx(5000.0, rel=1e-6)

    def test_infeasible_slo_raises(self, gpulet):
        from repro.baselines.base import InfeasibleScheduleError

        svc = Service("t", "bert-large", slo_latency_ms=3.0, request_rate=10)
        with pytest.raises(InfeasibleScheduleError):
            gpulet.schedule([svc])


class TestInterferenceHandling:
    def test_ground_truth_latency_recorded_for_pairs(self, gpulet):
        services = [
            Service("a", "vgg-16", slo_latency_ms=400, request_rate=800),
            Service("b", "resnet-50", slo_latency_ms=300, request_rate=300),
        ]
        placement = gpulet.schedule(services)
        from repro.models.perf import PerfModel
        from repro.models.zoo import get_model

        for plan in placement.gpus:
            if len(plan.segments) == 2:
                for seg in plan.segments:
                    clean = PerfModel(get_model(seg.model)).latency_ms(
                        seg.gpcs, seg.batch_size, 1
                    )
                    assert seg.latency_ms >= clean  # interference included

    def test_uses_more_gpus_than_parvagpu(self, gpulet, profiles):
        """The paper's headline: gpulet needs ~2x ParvaGPU's fleet."""
        from repro.core.parvagpu import ParvaGPU
        from repro.scenarios import scenario_services

        g = gpulet.schedule(scenario_services("S2"))
        p = ParvaGPU(profiles).schedule(scenario_services("S2"))
        assert g.num_gpus > p.num_gpus
