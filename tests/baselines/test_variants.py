"""Unit tests for the framework factory and Table I metadata."""

import pytest

from repro.baselines import TABLE_I, all_frameworks, make_framework
from repro.baselines.base import Capabilities


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls_name",
        [
            ("gpulet", "Gpulet"),
            ("igniter", "IGniter"),
            ("mig-serving", "MigServing"),
            ("parvagpu", "ParvaGPU"),
            ("parvagpu-single", "ParvaGPU"),
            ("parvagpu-unoptimized", "ParvaGPU"),
        ],
    )
    def test_known_names(self, profiles, name, cls_name):
        fw = make_framework(name, profiles)
        assert type(fw).__name__ == cls_name
        assert fw.name == name

    def test_case_insensitive(self, profiles):
        assert make_framework(" ParvaGPU ", profiles).name == "parvagpu"

    def test_unknown_raises(self, profiles):
        with pytest.raises(KeyError):
            make_framework("clockwork", profiles)

    def test_extra_baselines_constructible(self, profiles):
        assert make_framework("gslice", profiles).name == "gslice"
        assert make_framework("paris-elsa", profiles).name == "paris-elsa"

    def test_all_frameworks_default_set(self, profiles):
        fws = all_frameworks(profiles)
        assert list(fws) == [
            "gpulet", "igniter", "mig-serving", "parvagpu-single", "parvagpu",
        ]

    def test_variant_flags(self, profiles):
        single = make_framework("parvagpu-single", profiles)
        assert single.configurator.max_processes == 1
        unopt = make_framework("parvagpu-unoptimized", profiles)
        assert unopt.allocator.optimize is False


class TestTableI:
    def test_six_rows(self):
        assert len(TABLE_I) == 6
        assert [c.name for c in TABLE_I] == [
            "GSLICE", "gpulet", "iGniter", "PARIS and ELSA",
            "MIG-serving", "ParvaGPU",
        ]

    def test_parvagpu_row(self):
        row = TABLE_I[-1]
        assert row == Capabilities(
            "ParvaGPU", True, True, True, True, True, True, "Low"
        )

    def test_gpulet_quirks(self):
        row = next(c for c in TABLE_I if c.name == "gpulet")
        assert row.spatial_scheduling == 2  # two workloads per GPU
        assert row.external_fragmentation_prevention is None  # N/A

    def test_only_parvagpu_supports_both(self):
        both = [c.name for c in TABLE_I if c.mps_support and c.mig_support]
        assert both == ["ParvaGPU"]
