"""Unit tests for the iGniter baseline."""

import pytest

from repro.baselines.base import InfeasibleScheduleError
from repro.baselines.igniter import GUARD_FRACTION, IGniter
from repro.core.service import Service
from repro.scenarios import scenario_services


@pytest.fixture(scope="module")
def igniter(profiles):
    return IGniter(profiles)


class TestSizing:
    def test_one_partition_per_service(self, igniter, make_service):
        services = [
            make_service(sid=f"s{i}", rate=300.0 * (i + 1)) for i in range(3)
        ]
        placement = igniter.schedule(services)
        for svc in services:
            assert len(placement.segments_of(svc.id)) == 1

    def test_guard_band_overallocates(self, igniter, make_service):
        """The padded partition's capacity exceeds the request rate."""
        svc = make_service(rate=500.0)
        placement = igniter.schedule([svc])
        (seg,) = placement.segments_of(svc.id)
        assert seg.capacity > 500.0
        assert GUARD_FRACTION > 0

    def test_partitions_are_mps(self, igniter, make_service):
        placement = igniter.schedule([make_service()])
        assert all(s.kind == "mps" for _, s in placement.iter_segments())


class TestHighRateFailure:
    def test_fails_s5_and_s6(self, igniter):
        """The paper: 'iGniter is unable to manage high request rates,
        leading to its failure to execute in S5 and S6'."""
        for scenario in ("S5", "S6"):
            with pytest.raises(InfeasibleScheduleError):
                igniter.schedule(scenario_services(scenario))

    def test_succeeds_s1_through_s4(self, igniter):
        for scenario in ("S1", "S2", "S3", "S4"):
            placement = igniter.schedule(scenario_services(scenario))
            assert placement.num_gpus > 0

    def test_single_service_beyond_one_gpu(self, igniter):
        svc = Service(
            "hot", "inceptionv3", slo_latency_ms=146, request_rate=3815
        )
        with pytest.raises(InfeasibleScheduleError):
            igniter.schedule([svc])


class TestFragmentation:
    def test_leaves_unallocated_space(self, igniter):
        """No fragmentation handling: leftovers remain on interior GPUs."""
        from repro.metrics import external_fragmentation

        placement = igniter.schedule(scenario_services("S3"))
        assert external_fragmentation(placement) > 0.05
