"""Unit tests for the MIG-serving (fast algorithm) baseline."""

import pytest

from repro.baselines.base import InfeasibleScheduleError
from repro.baselines.mig_serving import MigServing
from repro.core.parvagpu import ParvaGPU
from repro.core.service import Service
from repro.scenarios import scenario_services


@pytest.fixture(scope="module")
def migserving(profiles):
    return MigServing(profiles)


class TestStructure:
    def test_placements_are_legal_mig(self, migserving):
        placement = migserving.schedule(scenario_services("S2"))
        placement.validate()

    def test_no_mps(self, migserving, make_service):
        placement = migserving.schedule([make_service(rate=2000.0)])
        assert all(
            s.num_processes == 1 for _, s in placement.iter_segments()
        )

    def test_capacity_covers_demand(self, migserving, make_service):
        svc = make_service(rate=3000.0)
        placement = migserving.schedule([svc])
        # DERATE means provisioned capacity exceeds demand comfortably.
        assert placement.total_capacity(svc.id) >= 3000.0

    def test_infeasible_service_raises(self, migserving):
        svc = Service("t", "bert-large", slo_latency_ms=3.0, request_rate=10)
        with pytest.raises(InfeasibleScheduleError):
            migserving.schedule([svc])


class TestPaperBehaviours:
    def test_overallocates_at_low_rates(self, migserving, profiles):
        """S1/S2: MIG-serving uses at least as many GPUs as ParvaGPU and
        provisions far more capacity than demanded."""
        services = scenario_services("S1")
        placement = migserving.schedule(services)
        parva = ParvaGPU(profiles).schedule(scenario_services("S1"))
        assert placement.num_gpus >= parva.num_gpus
        demand = sum(s.request_rate for s in services)
        capacity = sum(seg.capacity for _, seg in placement.iter_segments())
        assert capacity > 1.5 * demand  # heuristic over-allocation

    def test_low_external_fragmentation(self, migserving):
        """The BETA scoring keeps chosen configurations filled."""
        from repro.metrics import external_fragmentation

        placement = migserving.schedule(scenario_services("S2"))
        assert external_fragmentation(placement) < 0.05

    def test_slower_than_parvagpu(self, migserving, profiles):
        placement = migserving.schedule(scenario_services("S3"))
        parva = ParvaGPU(profiles).schedule(scenario_services("S3"))
        assert (
            placement.scheduling_delay_ms > 3 * parva.scheduling_delay_ms
        )

    def test_handles_high_rates(self, migserving):
        placement = migserving.schedule(scenario_services("S6"))
        assert placement.num_gpus > 5
