"""End-to-end integration: schedule -> deploy -> simulate, per framework."""

import pytest

from repro.baselines import InfeasibleScheduleError, all_frameworks
from repro.core import DeploymentManager, ParvaGPU
from repro.metrics import external_fragmentation, internal_slack
from repro.scenarios import scenario_services
from repro.sim import simulate_placement


class TestScenarioS2AllFrameworks:
    @pytest.fixture(scope="class")
    def results(self, profiles):
        out = {}
        for name, fw in all_frameworks(profiles).items():
            services = scenario_services("S2")
            placement = fw.schedule(services)
            report = simulate_placement(placement, services, duration_s=1.5)
            out[name] = (placement, report)
        return out

    def test_all_valid(self, results):
        for placement, _ in results.values():
            placement.validate()

    def test_parvagpu_fewest_gpus(self, results):
        parva = results["parvagpu"][0].num_gpus
        for name, (placement, _) in results.items():
            assert parva <= placement.num_gpus, name

    def test_parvagpu_lowest_slack(self, results):
        slacks = {
            name: internal_slack(p, r.segment_activity)
            for name, (p, r) in results.items()
        }
        assert slacks["parvagpu"] == min(slacks.values())
        # the paper's ordering: MPS ablation costs slack too
        assert slacks["parvagpu"] <= slacks["parvagpu-single"]

    def test_parvagpu_zero_fragmentation(self, results):
        assert external_fragmentation(results["parvagpu"][0]) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_mig_frameworks_full_compliance(self, results):
        for name in ("parvagpu", "parvagpu-single", "mig-serving", "igniter"):
            assert results[name][1].overall_compliance > 0.99, name

    def test_gpulet_is_the_violator(self, results):
        """Fig. 8: gpulet is the only framework with SLO violations."""
        assert results["gpulet"][1].overall_compliance < 1.0

    def test_capacity_covers_every_service(self, results):
        services = scenario_services("S2")
        for name, (placement, _) in results.items():
            # gpulet genuinely under-provisions the pair whose interference
            # its predictor underestimates — that *is* its Fig. 8 failure —
            # so it only gets the loose bound.
            floor = 0.8 if name == "gpulet" else 0.95
            for svc in services:
                assert (
                    placement.total_capacity(svc.id) >= svc.request_rate * floor
                ), (name, svc.id)


class TestHighLoadScenario:
    def test_s6_parvagpu_end_to_end(self, profiles):
        services = scenario_services("S6")
        placement = ParvaGPU(profiles).schedule(services)
        assert placement.num_gpus >= 10  # tens of GPUs at S6 scale
        report = simulate_placement(placement, services, duration_s=1.0)
        assert report.overall_compliance > 0.99
        slack = internal_slack(placement, report.segment_activity)
        assert slack < 0.15  # the paper's "optimally configured" range

    def test_igniter_fails_s6(self, profiles):
        from repro.baselines import IGniter

        with pytest.raises(InfeasibleScheduleError):
            IGniter(profiles).schedule(scenario_services("S6"))


class TestDeploymentRoundTrip:
    def test_schedule_deploy_matches_cluster_state(self, profiles):
        services = scenario_services("S1")
        placement = ParvaGPU(profiles).schedule(services)
        mgr = DeploymentManager(profiles)
        mgr.deploy(placement)
        assert mgr.cluster.used_gpu_count() == placement.num_gpus
        for gpu_id, seg in placement.iter_segments():
            gpu = mgr.cluster.gpu(gpu_id)
            match = [
                i
                for i in gpu.instances
                if i.owner == seg.service_id
                and i.start == seg.start
                and i.size == int(seg.gpcs)
            ]
            assert match, f"missing instance for {seg.service_id}"
            assert match[0].mps.num_processes == seg.num_processes
