"""End-to-end schedule -> simulate across partition geometries.

Covers the acceptance paths of the pluggable-geometry refactor: the
MI300X-only pipeline, heterogeneous A100+MI300X clusters, and the
invariant that the default MIG path is untouched by the refactor.
"""

import pytest

from repro.core.hetero import GeometryPool, HeterogeneousParvaGPU
from repro.core.parvagpu import ParvaGPU
from repro.gpu.geometry import get_geometry
from repro.profiler import profile_workloads
from repro.scenarios import scenario_services
from repro.sim import simulate_placement


@pytest.fixture(scope="module")
def amd_geometry():
    return get_geometry("mi300x")


@pytest.fixture(scope="module")
def amd_profiles(amd_geometry):
    return profile_workloads(geometry=amd_geometry)


class TestMI300XPipeline:
    @pytest.fixture(scope="class")
    def result(self, amd_profiles, amd_geometry):
        services = scenario_services("S2")
        placement = ParvaGPU(amd_profiles, geometry=amd_geometry).schedule(services)
        report = simulate_placement(placement, services, duration_s=1.5)
        return placement, report

    def test_placement_valid_and_pure_amd(self, result):
        placement, _ = result
        placement.validate()
        assert placement.geometries() == ("mi300x",)
        for _, seg in placement.iter_segments():
            assert seg.kind == "xcd"
            assert int(seg.gpcs) in (1, 2, 4, 8)

    def test_device_modes_are_uniform(self, result):
        """Every MI300X hosts instances of one size (device-wide mode)."""
        placement, _ = result
        for plan in placement.gpus:
            sizes = {int(s.gpcs) for s in plan.segments}
            assert len(sizes) == 1

    def test_capacity_covers_demand(self, result):
        placement, _ = result
        for svc in scenario_services("S2"):
            assert placement.total_capacity(svc.id) >= 0.95 * svc.request_rate

    def test_slo_compliance(self, result):
        _, report = result
        assert report.overall_compliance > 0.99

    def test_fewer_devices_than_a100_fleet(self, result, profiles):
        """A ~1.6x-A100 device should serve S2 with fewer boards."""
        placement, _ = result
        services = scenario_services("S2")
        mig_placement = ParvaGPU(profiles).schedule(services)
        assert placement.num_gpus <= mig_placement.num_gpus


class TestHeterogeneousCluster:
    @pytest.fixture(scope="class")
    def result(self, profiles, amd_profiles, amd_geometry):
        services = scenario_services("S7")
        scheduler = HeterogeneousParvaGPU(
            [
                GeometryPool(get_geometry("mig"), profiles),
                GeometryPool(amd_geometry, amd_profiles),
            ]
        )
        placement = scheduler.schedule(services)
        report = simulate_placement(placement, services, duration_s=1.5)
        return services, placement, report

    def test_valid_and_feasible(self, result):
        services, placement, _ = result
        placement.validate()
        for svc in services:
            assert placement.total_capacity(svc.id) >= 0.95 * svc.request_rate

    def test_gpu_ids_unique_across_pools(self, result):
        _, placement, _ = result
        ids = [plan.gpu_id for plan in placement.gpus]
        assert len(ids) == len(set(ids))

    def test_slo_compliance(self, result):
        _, _, report = result
        assert report.overall_compliance > 0.99

    def test_pool_caps_spill(self, profiles, amd_profiles, amd_geometry):
        """Capping the AMD pool at zero devices forces an all-MIG result."""
        services = scenario_services("S1")
        scheduler = HeterogeneousParvaGPU(
            [
                GeometryPool(get_geometry("mig"), profiles),
                GeometryPool(amd_geometry, amd_profiles, max_gpus=0),
            ]
        )
        placement = scheduler.schedule(services)
        placement.validate()
        assert placement.geometries() == ("mig",)


class TestMI300XDeployment:
    """The SIII-F machinery must follow the placement's geometry."""

    @pytest.fixture()
    def deployed(self, amd_profiles, amd_geometry):
        from repro.core.deployment import DeploymentManager

        services = scenario_services("S1")
        placement = ParvaGPU(amd_profiles, geometry=amd_geometry).schedule(services)
        manager = DeploymentManager(amd_profiles, geometry=amd_geometry)
        manager.deploy(placement)
        return services, placement, manager

    def test_cluster_materializes_amd_gpus(self, deployed):
        _, placement, manager = deployed
        assert manager.cluster.geometries() == ("mi300x",)
        assert manager.cluster.used_gpu_count() == placement.num_gpus

    def test_slo_update_replans_under_xcd_rules(self, deployed):
        services, _, manager = deployed
        changed = services[0]
        new_placement, plan = manager.update_slo(
            services, changed, new_rate=changed.request_rate * 1.5
        )
        new_placement.validate()
        assert new_placement.geometries() == ("mi300x",)
        # untouched services keep serving (the SIII-F argument)
        assert plan.unchanged


class TestMigPathUnchanged:
    def test_explicit_mig_geometry_matches_default(self, profiles):
        """geometry=MIG must be the identity refactor: same placement."""
        services_a = scenario_services("S2")
        services_b = scenario_services("S2")
        default = ParvaGPU(profiles).schedule(services_a)
        explicit = ParvaGPU(
            profiles, geometry=get_geometry("mig")
        ).schedule(services_b)

        def shape(placement):
            return [
                sorted(
                    (s.service_id, s.gpcs, s.start, s.batch_size, s.num_processes)
                    for s in plan.segments
                )
                for plan in placement.gpus
            ]

        assert shape(default) == shape(explicit)
        assert default.framework == explicit.framework == "parvagpu"
