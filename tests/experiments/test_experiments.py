"""Tests for the experiment registry and the fast harnesses."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.registry import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) >= {
            "table1", "fig1", "fig3", "fig4", "table4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        }
        assert "table1x" in EXPERIMENTS  # the beyond-the-paper comparison

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_result_row_validation(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add(1, 2)
        with pytest.raises(ValueError):
            r.add(1)

    def test_result_column_access(self):
        r = ExperimentResult("x", "t", columns=("a", "b"))
        r.add(1, 2)
        r.add(3, 4)
        assert r.column("b") == [2, 4]

    def test_render_contains_notes(self):
        r = ExperimentResult("x", "title", columns=("a",))
        r.add(1.5)
        r.notes.append("hello")
        text = r.render()
        assert "title" in text and "1.50" in text and "note: hello" in text


class TestStaticHarnesses:
    def test_table1_matches_paper_rows(self):
        result = run_experiment("table1")
        assert len(result.rows) == 6
        parva = result.rows[-1]
        assert parva[0] == "ParvaGPU"
        assert parva[-1] == "Low"

    def test_fig1_has_19_configs(self):
        result = run_experiment("fig1")
        assert len(result.rows) == 19

    def test_table4_dimensions(self):
        result = run_experiment("table4")
        assert len(result.rows) == 12  # 6 scenarios x (rate, latency)
        assert len(result.columns) == 2 + 11

    def test_fig3_grid(self):
        result = run_experiment("fig3")
        assert len(result.rows) == 3 * 5  # procs x sizes
        # throughput should broadly rise with batch on big instances
        row = next(r for r in result.rows if r[0] == 1 and r[1] == 7)
        series = [v for v in row[2:] if v is not None]
        assert series[-1] > series[0]

    def test_fig4_oom_gaps_match_fig3(self):
        fig3 = run_experiment("fig3")
        fig4 = run_experiment("fig4")
        for r3, r4 in zip(fig3.rows, fig4.rows):
            assert [v is None for v in r3[2:]] == [v is None for v in r4[2:]]


class TestScenarioHarnesses:
    """Shape assertions on the figure-level claims (S1/S2 kept quick)."""

    def test_fig5_shape(self):
        result = run_experiment("fig5")
        by_scenario = {row[0]: row for row in result.rows}
        cols = result.columns
        parva_i = cols.index("parvagpu")
        igniter_i = cols.index("igniter")
        gpulet_i = cols.index("gpulet")
        single_i = cols.index("parvagpu-single")
        for name, row in by_scenario.items():
            # ParvaGPU always uses the fewest GPUs
            rivals = [v for j, v in enumerate(row[1:], 1)
                      if j != parva_i and v is not None]
            assert all(row[parva_i] <= v for v in rivals)
            # ... and never beats its own single-process ablation's bound
            assert row[parva_i] <= row[single_i]
        # iGniter absent from S5/S6
        assert by_scenario["S5"][igniter_i] is None
        assert by_scenario["S6"][igniter_i] is None
        # gpulet blows up at high request rates
        assert by_scenario["S6"][gpulet_i] >= 1.5 * by_scenario["S6"][parva_i]

    def test_fig7_shape(self):
        result = run_experiment("fig7")
        cols = result.columns
        parva_i = cols.index("parvagpu")
        igniter_i = cols.index("igniter")
        for row in result.rows:
            assert row[parva_i] == pytest.approx(0.0, abs=0.5)
        igniter_vals = [
            row[igniter_i] for row in result.rows if row[igniter_i] is not None
        ]
        assert max(igniter_vals) > 10.0  # iGniter fragments badly somewhere

    def test_fig9_shape(self):
        result = run_experiment("fig9", repeats=1)
        cols = result.columns
        parva_i = cols.index("parvagpu")
        mig_i = cols.index("mig-serving")
        for row in result.rows:
            assert row[mig_i] > row[parva_i]  # log scale: strictly slower
