"""Regression tests for the gated wall-clock assertion helper.

benchmarks/test_fig9_delay.py routes its timing bounds through
``wall_clock_assert``; these tests pin the gate's contract so a refactor
can't silently turn warnings back into flaky hard failures (or strict
mode into a no-op).
"""

import warnings

import pytest

from repro.experiments.wallclock import (
    STRICT_ENV,
    WallClockWarning,
    strict_wall_clock,
    wall_clock_assert,
)


def test_holding_bound_is_silent_everywhere():
    for env in ({}, {STRICT_ENV: "1"}):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would raise
            assert wall_clock_assert(True, "fine", env=env) is True


def test_violation_warns_and_passes_by_default():
    with pytest.warns(WallClockWarning, match="too slow"):
        assert wall_clock_assert(False, "too slow", env={}) is False


def test_violation_raises_under_strict_env():
    with pytest.raises(AssertionError, match="too slow"):
        wall_clock_assert(False, "too slow", env={STRICT_ENV: "1"})


def test_any_nonempty_value_is_strict_but_empty_is_not():
    assert strict_wall_clock(env={STRICT_ENV: "yes"})
    assert strict_wall_clock(env={STRICT_ENV: "0"})  # set at all counts
    assert not strict_wall_clock(env={STRICT_ENV: ""})
    assert not strict_wall_clock(env={})


def test_env_defaults_to_process_environment(monkeypatch):
    monkeypatch.setenv(STRICT_ENV, "1")
    with pytest.raises(AssertionError):
        wall_clock_assert(False, "strict from os.environ")
    monkeypatch.delenv(STRICT_ENV)
    with pytest.warns(WallClockWarning):
        wall_clock_assert(False, "lenient from os.environ")
