"""Unit tests for terminal chart rendering."""

from repro.experiments.charts import render_bar_chart, render_series
from repro.experiments.registry import ExperimentResult


def bar_result():
    r = ExperimentResult("figX", "demo bars", columns=("scenario", "a", "b"))
    r.add("S1", 10.0, 20.0)
    r.add("S2", None, 40.0)
    return r


def series_result():
    r = ExperimentResult("figY", "demo series", columns=("factor", "up", "down"))
    for k in range(1, 6):
        r.add(k, float(k), float(6 - k))
    return r


class TestBarChart:
    def test_contains_groups_and_series(self):
        text = render_bar_chart(bar_result())
        for token in ("S1", "S2", "a", "b", "demo bars"):
            assert token in text

    def test_none_renders_na(self):
        assert "n/a" in render_bar_chart(bar_result())

    def test_peak_value_gets_full_bar(self):
        text = render_bar_chart(bar_result(), width=10)
        assert "██████████ 40" in text

    def test_proportionality(self):
        lines = render_bar_chart(bar_result(), width=40).splitlines()
        a_bar = next(l for l in lines if l.strip().startswith("a")).count("█")
        b40 = [l for l in lines if "40" in l][0].count("█")
        assert b40 == 40
        assert a_bar == 10  # 10/40 of the width

    def test_empty_result(self):
        r = ExperimentResult("x", "t", columns=("g", "v"))
        assert "(no data)" in render_bar_chart(r)


class TestSeries:
    def test_marks_and_legend(self):
        text = render_series(series_result())
        assert "legend:" in text
        assert "U=up" in text or "u=up" in text.lower()

    def test_extremes_on_axis(self):
        text = render_series(series_result())
        assert "5.00" in text and "1.00" in text

    def test_empty(self):
        r = ExperimentResult("x", "t", columns=("f", "v"))
        assert "(no data)" in render_series(r)
