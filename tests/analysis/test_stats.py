"""Unit tests for the replication-statistics helpers."""

import pytest

from repro.analysis import bootstrap_ci, replicate_compliance, summarize


class TestBootstrap:
    def test_ci_contains_mean_for_tight_data(self):
        lo, hi = bootstrap_ci([10.0, 10.1, 9.9, 10.05, 9.95])
        assert lo <= 10.0 <= hi
        assert hi - lo < 0.5

    def test_single_value_degenerate(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic(self):
        a = bootstrap_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        b = bootstrap_ci([1.0, 2.0, 3.0, 4.0], seed=1)
        assert a == b


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.ci_low <= s.mean <= s.ci_high

    def test_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert (s.ci_low, s.ci_high) == (7.0, 7.0)


class TestReplication:
    def test_seed_sweep(self):
        stats = replicate_compliance(lambda seed: 0.99 + 0.001 * seed, seeds=[0, 1, 2])
        assert stats.n == 3
        assert stats.mean == pytest.approx(0.991)

    def test_sim_backed_replication(self, profiles):
        """The canonical use: ParvaGPU's S1 compliance holds across seeds."""
        from repro.core.parvagpu import ParvaGPU
        from repro.scenarios import scenario_services
        from repro.sim import simulate_placement

        services = scenario_services("S1")
        placement = ParvaGPU(profiles).schedule(services)

        def run(seed: int) -> float:
            report = simulate_placement(
                placement, services, duration_s=1.0, seed=seed,
                arrivals="poisson",
            )
            return report.overall_compliance

        stats = replicate_compliance(run, seeds=range(3))
        assert stats.minimum > 0.97
