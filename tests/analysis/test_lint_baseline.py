"""Baseline contract, config loading, CLI exit codes, and the meta-test
that the shipped tree is clean against the committed (empty) baseline."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import (
    LintConfig,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    load_config,
)
from repro.analysis.lint.baseline import finding_key, format_entry, snippet_digest

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBaselineFile:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        entries, errors = load_baseline(tmp_path / "nope.txt")
        assert entries == [] and errors == []

    def test_justified_entry_parses(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# comment\n"
            "\n"
            "D002 | src/repro/foo.py | abcdef012345 | legacy stopwatch\n"
        )
        entries, errors = load_baseline(path)
        assert errors == []
        (entry,) = entries
        assert entry.key == ("D002", "src/repro/foo.py", "abcdef012345")
        assert entry.justification == "legacy stopwatch"

    def test_unjustified_entry_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("D002 | src/repro/foo.py | abcdef012345 |\n")
        entries, errors = load_baseline(path)
        assert entries == []
        assert len(errors) == 1 and "justification" in errors[0]

    def test_malformed_and_unknown_code_entries_are_errors(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("garbage line\nD999 | a.py | 000000000000 | why\n")
        entries, errors = load_baseline(path)
        assert entries == [] and len(errors) == 2

    def test_matching_entry_suppresses_and_stale_entry_is_flagged(self, tmp_path):
        config = LintConfig(root=tmp_path)
        target = tmp_path / "src" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nt = time.time()\n")
        findings = lint_paths([target], config)
        assert [f.code for f in findings] == ["D002"]

        baseline = tmp_path / "baseline.txt"
        baseline.write_text(
            format_entry(findings[0], config, "grandfathered stopwatch")
            + "\n"
            + "D001 | src/mod.py | 000000000000 | no longer present\n"
        )
        entries, errors = load_baseline(baseline)
        assert errors == []
        new, stale = apply_baseline(findings, entries, config)
        assert new == []
        assert [e.code for e in stale] == ["D001"]

    def test_digest_tracks_snippet_not_line_number(self, tmp_path):
        config = LintConfig(root=tmp_path)
        src_a = "import time\nt = time.time()\n"
        src_b = "import time\n\n\n# moved down\nt = time.time()\n"
        (fa,) = lint_source(src_a, tmp_path / "m.py", config)
        (fb,) = lint_source(src_b, tmp_path / "m.py", config)
        assert fa.line != fb.line
        assert finding_key(fa, config) == finding_key(fb, config)
        assert snippet_digest(fa.snippet) == snippet_digest("t = time.time()")


class TestConfig:
    def test_pyproject_overrides(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\n"
            'wallclock-allow = ["tools/*"]\n'
            'identity-modules = ["src/pkg/*"]\n'
            'baseline = "lint-baseline.txt"\n'
        )
        config = load_config(root=tmp_path)
        assert config.wallclock_allowed(tmp_path / "tools" / "bench.py")
        assert not config.wallclock_allowed(tmp_path / "src" / "pkg" / "a.py")
        assert config.is_identity_module(tmp_path / "src" / "pkg" / "a.py")
        assert config.baseline_path() == tmp_path / "lint-baseline.txt"

    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(root=tmp_path)
        assert config.is_identity_module(tmp_path / "src/repro/sim/engine.py")
        assert not config.is_identity_module(tmp_path / "src/repro/cli.py")
        assert config.wallclock_allowed(tmp_path / "benchmarks/perf/harness.py")

    def test_repo_config_routes_this_repo(self):
        config = load_config(root=REPO_ROOT)
        assert config.is_identity_module(REPO_ROOT / "src/repro/parallel.py")
        assert config.wallclock_allowed(REPO_ROOT / "src/repro/cli.py")
        assert not config.wallclock_allowed(REPO_ROOT / "src/repro/sim/engine.py")


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
        mod = tmp_path / "src" / "ok.py"
        mod.parent.mkdir()
        mod.write_text("import math\nx = math.sqrt(2)\n")
        result = run_cli("src", cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "repro-lint: clean" in result.stdout

    def test_finding_exits_one_with_location(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
        mod = tmp_path / "src" / "bad.py"
        mod.parent.mkdir()
        mod.write_text("import random\nrandom.shuffle(x)\n")
        result = run_cli("src", cwd=tmp_path)
        assert result.returncode == 1
        assert "src/bad.py:2:" in result.stdout and "D001" in result.stdout

    def test_write_baseline_prints_entries(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
        mod = tmp_path / "src" / "bad.py"
        mod.parent.mkdir()
        mod.write_text("import random\nrandom.shuffle(x)\n")
        result = run_cli("src", "--write-baseline", cwd=tmp_path)
        assert result.returncode == 1
        assert result.stdout.startswith("D001 | src/bad.py | ")
        assert "TODO: justify or fix" in result.stdout

    def test_list_rules(self, tmp_path):
        result = run_cli("--list-rules", cwd=tmp_path)
        assert result.returncode == 0
        for code in ("D001", "D002", "D003", "D004", "D005", "D006"):
            assert code in result.stdout


class TestShippedTree:
    """The acceptance meta-test: the committed tree is clean and the
    committed baseline has no (unjustified or stale) entries."""

    def test_committed_baseline_is_empty_and_valid(self):
        config = load_config(root=REPO_ROOT)
        entries, errors = load_baseline(config.baseline_path())
        assert errors == []
        for entry in entries:  # must each carry a justification
            assert entry.justification.strip()
        # Policy: the shipped baseline stays empty — justifications live
        # in disable comments next to the code instead.
        assert entries == []

    def test_shipped_tree_matches_baseline(self):
        config = load_config(root=REPO_ROOT)
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            config,
        )
        entries, errors = load_baseline(config.baseline_path())
        assert errors == []
        new, stale = apply_baseline(findings, entries, config)
        assert stale == []
        assert new == [], "\n".join(
            f.render(config.relpath(f.path)) for f in new
        )
