"""Fixture-driven tests for every repro-lint rule.

Each rule gets (at least) one snippet that must trigger it, one
near-miss that must stay quiet, and one disable-comment case.  Snippets
are linted as in-memory source under synthetic paths so the identity-
module and wall-clock-allowlist routing is exercised too.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import LintConfig, lint_source

ROOT = Path("/fake/repo")

#: A path inside the identity-checked set (D003/D004 active).
IDENTITY = ROOT / "src/repro/sim/example.py"
#: A path outside it (D003/D004 inactive) and outside the allowlist.
PLAIN = ROOT / "src/repro/experiments/example.py"
#: A path on the wall-clock allowlist.
ALLOWED = ROOT / "src/repro/experiments/wallclock.py"

CONFIG = LintConfig(root=ROOT)


def codes(source: str, path: Path = IDENTITY) -> list[str]:
    return [f.code for f in lint_source(source, path, CONFIG)]


def disable(rule_codes: str, reason: str | None = None) -> str:
    """Render a disable comment for a fixture snippet.

    Assembled at runtime so this test file itself never contains the
    literal marker — otherwise linting `tests/` would parse the fixture
    strings on their physical lines here.
    """
    comment = "# repro-" + "lint: disable=" + rule_codes
    if reason is not None:
        comment += f" ({reason})"
    return comment


# --------------------------------------------------------------------- #
# D001 - unseeded randomness
# --------------------------------------------------------------------- #


class TestD001:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import random\nrandom.shuffle(items)\n",
            "import random\nx = random.random()\n",
            "import random as rnd\nx = rnd.randint(0, 7)\n",
            "from random import choice\nx = choice(items)\n",
            "import random\nrng = random.Random()\n",
            "import random\nrng = random.SystemRandom()\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "from numpy import random\nx = random.randint(9)\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "import numpy as np\nrng = np.random.RandomState()\n",
        ],
    )
    def test_triggers(self, snippet):
        assert codes(snippet) == ["D001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Seeded constructors are the prescribed idiom.
            "import random\nrng = random.Random('seed:7')\n",
            "from random import Random\nrng = Random(13)\n",
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "import numpy as np\nrng = np.random.default_rng(seed=42)\n",
            "import numpy as np\nrng = np.random.Generator(np.random.PCG64(1))\n",
            # Methods on a local Generator/Random object are untracked
            # by design: the seed was threaded at construction.
            "def f(rng):\n    return rng.random() + rng.choice([1, 2])\n",
            # A different module that happens to be called `random`.
            "import mylib.random as random\nrandom.shuffle(x)\n",
        ],
    )
    def test_near_misses(self, snippet):
        assert codes(snippet) == []

    def test_disable_with_reason(self):
        src = (
            "import random\n"
            f"random.shuffle(items)  {disable('D001', 'demo, order cosmetic')}\n"
        )
        assert codes(src) == []

    def test_disable_without_reason_is_d000_and_keeps_finding(self):
        src = f"import random\nrandom.shuffle(items)  {disable('D001')}\n"
        assert sorted(codes(src)) == ["D000", "D001"]


# --------------------------------------------------------------------- #
# D002 - wall-clock reads
# --------------------------------------------------------------------- #


class TestD002:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt0 = time.perf_counter()\n",
            "from time import perf_counter\nt0 = perf_counter()\n",
            "import time\nclock = time.monotonic\n",  # bare reference
            "from datetime import datetime\nnow = datetime.now()\n",
            "import datetime\nnow = datetime.datetime.utcnow()\n",
        ],
    )
    def test_triggers(self, snippet):
        assert codes(snippet, PLAIN) == ["D002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Simulated-clock arithmetic: no wall-clock module involved.
            "def step(clock_s, dt):\n    return clock_s + dt\n",
            "import time\ntime.sleep(0.1)\n",  # sleep is not a *read*
            "from datetime import timedelta\nd = timedelta(seconds=3)\n",
        ],
    )
    def test_near_misses(self, snippet):
        assert codes(snippet, PLAIN) == []

    def test_allowlisted_file_is_quiet(self):
        src = "import time\nt0 = time.perf_counter()\n"
        assert codes(src, ALLOWED) == []
        assert codes(src, ROOT / "benchmarks/perf/harness.py") == []

    def test_disable_with_reason(self):
        src = (
            "import time\n"
            f"t = time.time()  {disable('D002', 'log timestamp only')}\n"
        )
        assert codes(src, PLAIN) == []


# --------------------------------------------------------------------- #
# D003 - unordered iteration in identity modules
# --------------------------------------------------------------------- #


class TestD003:
    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in set(items):\n    emit(x)\n",
            "for x in {a, b, c}:\n    emit(x)\n",
            "order = [f(x) for x in frozenset(items)]\n",
            "order = list(set(items))\n",
            "pairs = {k: 1 for k in set(items)}\n",
            "gen = (x for x in set(items))\n",
        ],
    )
    def test_triggers(self, snippet):
        assert codes(snippet) == ["D003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # sorted() restores a deterministic order.
            "for x in sorted(set(items)):\n    emit(x)\n",
            "order = [f(x) for x in sorted({a, b})]\n",
            # Order-insensitive consumption is fine.
            "n = len(set(items))\n",
            "m = max(set(items))\n",
            "ok = x in set(items)\n",
            "same = set(a) == set(b)\n",
            # dict iteration is insertion-ordered in py>=3.7.
            "for k in mapping:\n    emit(k)\n",
            "vals = list(mapping.values())\n",
        ],
    )
    def test_near_misses(self, snippet):
        assert codes(snippet) == []

    def test_only_fires_in_identity_modules(self):
        src = "for x in set(items):\n    emit(x)\n"
        assert codes(src, PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            f"for x in set(items):  {disable('D003', 'emit is order-free')}\n"
            "    emit(x)\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# D004 - order-sensitive float accumulation
# --------------------------------------------------------------------- #


class TestD004:
    @pytest.mark.parametrize(
        "snippet",
        [
            "total = sum(set(costs))\n",
            "total = sum({a, b, c})\n",
            "total = sum(c.weight for c in set(costs))\n",
            "total = sum([c.weight for c in set(costs)])\n",
            "for c in set(costs):\n    total += c.weight\n",
            "for c in {a, b}:\n    total -= c\n",
        ],
    )
    def test_triggers(self, snippet):
        assert codes(snippet) == ["D004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "total = sum(sorted(set(costs)))\n",
            "total = sum(c.weight for c in sorted(set(costs)))\n",
            "total = sum(costs)\n",  # list: order fixed by the caller
            "total = sum(mapping.values())\n",  # dicts iterate insertion order
            "for c in sorted(set(costs)):\n    total += c\n",
        ],
    )
    def test_near_misses(self, snippet):
        assert codes(snippet) == []

    def test_only_fires_in_identity_modules(self):
        assert codes("total = sum(set(costs))\n", PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            "total = sum(set(counts))  "
            f"{disable('D004', 'integer counts, addition commutes')}\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# D005 - pickle-unsafe pool payloads
# --------------------------------------------------------------------- #


class TestD005:
    def test_lambda_to_submit(self):
        src = "fut = executor.submit(lambda: work(x))\n"
        assert codes(src, PLAIN) == ["D005"]

    def test_lambda_to_pool_run(self):
        src = "results = pool.run(lambda payload: payload + 1, payloads)\n"
        assert codes(src, PLAIN) == ["D005"]

    def test_local_function_to_pool(self):
        src = (
            "def drive(pool, payloads):\n"
            "    def job(p):\n"
            "        return p + 1\n"
            "    return pool.run(job, payloads)\n"
        )
        assert codes(src, PLAIN) == ["D005"]

    def test_module_level_function_is_fine(self):
        src = (
            "def job(p):\n"
            "    return p + 1\n"
            "def drive(pool, payloads):\n"
            "    return pool.run(job, payloads)\n"
        )
        assert codes(src, PLAIN) == []

    def test_lambda_elsewhere_is_fine(self):
        assert codes("key = sorted(xs, key=lambda x: x.id)\n", PLAIN) == []

    def test_non_pool_run_receiver_is_fine(self):
        assert codes("subprocess.run(['ls'])\n", PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            "fut = executor.submit(lambda: work(x))  "
            f"{disable('D005', 'thread pool, no pickling')}\n"
        )
        assert codes(src, PLAIN) == []


# --------------------------------------------------------------------- #
# D006 - fast-path parity
# --------------------------------------------------------------------- #


class TestD006:
    def test_unused_fast_path_switch(self):
        src = (
            "def schedule(services, fast_path=True):\n"
            "    return _indexed_schedule(services)\n"
        )
        assert codes(src, PLAIN) == ["D006"]

    def test_unused_workers_switch(self):
        src = (
            "def simulate(placement, workers=4):\n"
            "    return _sharded(placement)\n"
        )
        assert codes(src, PLAIN) == ["D006"]

    def test_branching_on_the_switch_is_fine(self):
        src = (
            "def schedule(services, fast_path=True):\n"
            "    if fast_path:\n"
            "        return _indexed_schedule(services)\n"
            "    return _naive_schedule(services)\n"
        )
        assert codes(src, PLAIN) == []

    def test_storing_the_switch_is_fine(self):
        src = (
            "class S:\n"
            "    def __init__(self, indexed=True):\n"
            "        self.indexed = indexed\n"
        )
        assert codes(src, PLAIN) == []

    def test_signature_only_defs_are_skipped(self):
        src = (
            "class Proto:\n"
            "    def schedule(self, services, fast_path=True):\n"
            "        ...\n"
            "    def other(self, services, indexed=True):\n"
            "        raise NotImplementedError\n"
        )
        assert codes(src, PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            "def schedule(services, fast_path=True):  "
            f"{disable('D006', 'flag reserved for API compat')}\n"
            "    return _indexed_schedule(services)\n"
        )
        assert codes(src, PLAIN) == []


# --------------------------------------------------------------------- #
# D007 - swallowed exceptions
# --------------------------------------------------------------------- #


class TestD007:
    @pytest.mark.parametrize(
        "snippet",
        [
            "try:\n    f()\nexcept Exception:\n    pass\n",
            "try:\n    f()\nexcept BaseException:\n    pass\n",
            "try:\n    f()\nexcept:\n    result = None\n",
            "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n",
            # a logging call is not an acknowledgement: nothing counted,
            # nothing re-raised
            "try:\n    f()\nexcept Exception as exc:\n    log(exc)\n",
        ],
    )
    def test_swallowing_handler(self, snippet):
        assert codes(snippet) == ["D007"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # narrow types are fine even when silent
            "try:\n    f()\nexcept ValueError:\n    pass\n",
            "try:\n    f()\nexcept (ConnectionError, OSError):\n    pass\n",
            # a counter increment acknowledges the failure
            "try:\n    f()\nexcept Exception:\n    health.errors += 1\n",
            # re-raising (bare or wrapped) acknowledges it
            "try:\n    f()\nexcept Exception:\n    raise\n",
            (
                "try:\n    f()\nexcept Exception as exc:\n"
                "    raise RuntimeError('x') from exc\n"
            ),
            # the counter may sit under a condition
            (
                "try:\n    f()\nexcept Exception:\n"
                "    if counting:\n        stats.failed += 1\n"
            ),
        ],
    )
    def test_acknowledged_or_narrow_handler(self, snippet):
        assert codes(snippet) == []

    def test_outside_identity_modules_is_quiet(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert codes(src, PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            "try:\n    f()\n"
            f"except Exception:  {disable('D007', 'best-effort cleanup')}\n"
            "    pass\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# D008 - bare dict counters outside the obs facade
# --------------------------------------------------------------------- #


class TestD008:
    @pytest.mark.parametrize(
        "snippet",
        [
            "self.counters['intervals'] += 1\n",
            "metrics['replans'] += 1\n",
            "self.metric_totals[kind] += n\n",
            "step_counters[path] -= 1\n",
        ],
    )
    def test_triggers(self, snippet):
        assert codes(snippet) == ["D008"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # a plain-attribute stats object is the attach() idiom
            "self.health.steps += 1\n",
            # non-metric-named mappings stay out of scope
            "totals['x'] += 1\n",
            "self.pending[key] += 1\n",
            # assignment (not accumulation) into a metric store is how
            # the registry itself snapshots — never flagged
            "counters['x'] = 1\n",
            # reading a counter is fine
            "n = self.counters['x']\n",
        ],
    )
    def test_near_misses(self, snippet):
        assert codes(snippet) == []

    def test_only_fires_in_identity_modules(self):
        assert codes("metrics['x'] += 1\n", PLAIN) == []

    def test_disable_with_reason(self):
        src = (
            "metrics['x'] += 1  "
            f"{disable('D008', 'scratch dict in a local analysis pass')}\n"
        )
        assert codes(src) == []


# --------------------------------------------------------------------- #
# Cross-cutting: disables, parsing, multiple findings
# --------------------------------------------------------------------- #


class TestEngine:
    def test_syntax_error_is_reported_not_raised(self):
        assert codes("def broken(:\n", PLAIN) == ["E001"]

    def test_disable_only_suppresses_named_rule(self):
        src = (
            "import random, time\n"
            f"x = random.random() + time.time()  {disable('D001', 'demo')}\n"
        )
        assert codes(src, PLAIN) == ["D002"]

    def test_disable_with_multiple_codes(self):
        src = (
            "import random, time\n"
            "x = random.random() + time.time()  "
            f"{disable('D001,D002', 'demo script, not replayed')}\n"
        )
        assert codes(src, PLAIN) == []

    def test_unknown_rule_in_disable_is_d000(self):
        src = f"x = 1  {disable('D999', 'no such rule')}\n"
        assert codes(src, PLAIN) == ["D000"]

    def test_findings_carry_location_and_snippet(self):
        src = "import time\nt = time.time()\n"
        (finding,) = lint_source(src, PLAIN, CONFIG)
        assert (finding.code, finding.line) == ("D002", 2)
        assert finding.snippet == "t = time.time()"
        rendered = finding.render("src/repro/experiments/example.py")
        assert rendered.startswith("src/repro/experiments/example.py:2:")
