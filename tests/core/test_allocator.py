"""Unit tests for Algorithm 2: Segment Relocation + Allocation Optimization."""

import pytest

from repro.core.allocator import (
    OPTIMIZATION_GPC_THRESHOLD,
    SLOT_FALLBACKS,
    SLOT_PREFERENCES,
    SegmentAllocator,
    _GPUState,
)
from repro.core.configurator import SegmentConfigurator
from repro.core.segments import Segment
from repro.metrics import external_fragmentation


def seg(size, sid="svc", tp=100.0, model="resnet-50"):
    return Segment(
        service_id=sid,
        model=model,
        instance_size=size,
        batch_size=8,
        num_processes=1,
        throughput=tp,
        latency_ms=10.0,
        sm_activity=0.9,
    )


def configured(profiles, make_service, **kwargs):
    svc = make_service(**kwargs)
    SegmentConfigurator(profiles).configure([svc])
    return svc


class TestSlotRules:
    def test_preference_tables_match_paper(self):
        assert SLOT_PREFERENCES[7] == (0,)
        assert SLOT_PREFERENCES[4] == (0,)
        assert SLOT_PREFERENCES[3] == (4,)  # "priority to slot 4"
        assert SLOT_PREFERENCES[2] == (0, 2)  # "preferably slots 0 or 2"
        assert SLOT_PREFERENCES[1] == (0, 1, 2, 3)  # "initially 0-3"
        assert SLOT_FALLBACKS[3] == ()  # never block slice 3
        assert SLOT_FALLBACKS[2] == (4, 5)
        assert SLOT_FALLBACKS[1] == (4, 5, 6)

    def test_gpustate_prefers_slot4_for_threes(self):
        state = _GPUState(gpu_id=0)
        assert state.try_place(seg(3)) == 4

    def test_gpustate_fallback(self):
        state = _GPUState(gpu_id=0)
        state.try_place(seg(4))  # occupies 0-3
        assert state.try_place(seg(2)) is None  # slots 0/2 taken
        assert state.try_place(seg(2), fallback=True) == 4

    def test_ones_fill_lower_half_first(self):
        state = _GPUState(gpu_id=0)
        starts = [state.try_place(seg(1)) for _ in range(4)]
        assert starts == [0, 1, 2, 3]
        assert state.try_place(seg(1)) is None
        assert state.try_place(seg(1), fallback=True) == 4


class TestSegmentRelocation:
    def test_descending_size_order(self, profiles, make_service):
        """A size-7 segment always lands on its own (first-fit) GPU."""
        svc_big = configured(profiles, make_service, sid="big", model="vgg-19",
                             slo=180.0, rate=2000.0)
        svc_small = configured(profiles, make_service, sid="small",
                               model="mobilenetv2", slo=100.0, rate=500.0)
        allocator = SegmentAllocator(optimize=False)
        placement = allocator.allocate([svc_small, svc_big])
        placement.validate()

    def test_placement_is_legal_mig(self, profiles, make_service):
        services = [
            configured(profiles, make_service, sid=f"s{i}", model=m,
                       slo=250.0, rate=800.0 * (i + 1))
            for i, m in enumerate(
                ["resnet-50", "vgg-16", "densenet-121", "inceptionv3"]
            )
        ]
        placement = SegmentAllocator(optimize=False).allocate(services)
        placement.validate()  # raises on any illegal layout

    def test_all_segments_placed(self, profiles, make_service):
        services = [
            configured(profiles, make_service, sid=f"s{i}", rate=1500.0)
            for i in range(3)
        ]
        placement = SegmentAllocator(optimize=False).allocate(services)
        placed = len(list(placement.iter_segments()))
        expected = sum(len(s.segments()) for s in services)
        assert placed == expected

    def test_first_fit_reuses_gpus(self, profiles, make_service):
        svc = configured(profiles, make_service, rate=200.0)
        placement = SegmentAllocator(optimize=False).allocate([svc])
        assert placement.num_gpus == 1


class TestAllocationOptimization:
    def test_threshold_default_is_four(self):
        assert OPTIMIZATION_GPC_THRESHOLD == 4

    def test_optimization_never_uses_more_gpus(self, profiles, make_service):
        for rate in (500.0, 2500.0, 8000.0):
            services = [
                configured(profiles, make_service, sid=f"s{i}-{rate}",
                           model=m, slo=300.0, rate=rate)
                for i, m in enumerate(["resnet-50", "vgg-16", "inceptionv3"])
            ]
            unopt = SegmentAllocator(optimize=False).allocate(services)
            services2 = [
                configured(profiles, make_service, sid=f"t{i}-{rate}",
                           model=m, slo=300.0, rate=rate)
                for i, m in enumerate(["resnet-50", "vgg-16", "inceptionv3"])
            ]
            opt = SegmentAllocator(optimize=True).allocate(services2)
            assert opt.num_gpus <= unopt.num_gpus

    def test_hosted_service_missing_from_argument(self, profiles, make_service):
        """A placed service absent from ``services`` must be a named
        ValueError, not a bare KeyError mid-optimization (reachable from
        the SLO-update and failover incremental paths)."""
        import pytest

        svc = configured(profiles, make_service, sid="present", rate=4000.0)
        ghost = configured(profiles, make_service, sid="ghost", rate=500.0)
        allocator = SegmentAllocator(optimize=True)
        gpus = allocator.segment_relocation([svc, ghost])
        with pytest.raises(ValueError, match="ghost"):
            allocator.allocation_optimization(gpus, [svc])

    def test_optimization_preserves_capacity(self, profiles, make_service):
        svc = configured(profiles, make_service, rate=4000.0)
        placement = SegmentAllocator(optimize=True).allocate([svc])
        assert placement.total_capacity(svc.id) >= 4000.0 * (1 - 1e-9)

    def test_optimized_placement_legal(self, profiles, make_service):
        services = [
            configured(profiles, make_service, sid=f"s{i}", model=m,
                       slo=160.0, rate=3000.0)
            for i, m in enumerate(
                ["resnet-50", "densenet-169", "mobilenetv2", "vgg-16",
                 "resnet-101"]
            )
        ]
        placement = SegmentAllocator(optimize=True).allocate(services)
        placement.validate()

    def test_optimization_reduces_fragmentation(self, profiles, make_service):
        """On mixes where relocation strands a fragmented GPU, optimization
        must not make fragmentation worse."""
        services = [
            configured(profiles, make_service, sid=f"s{i}", model=m,
                       slo=140.0, rate=1200.0)
            for i, m in enumerate(
                ["densenet-201", "resnet-152", "vgg-19", "densenet-169"]
            )
        ]
        unopt = SegmentAllocator(optimize=False).allocate(services)
        services2 = [
            configured(profiles, make_service, sid=f"t{i}", model=m,
                       slo=140.0, rate=1200.0)
            for i, m in enumerate(
                ["densenet-201", "resnet-152", "vgg-19", "densenet-169"]
            )
        ]
        opt = SegmentAllocator(optimize=True).allocate(services2)
        assert external_fragmentation(opt) <= external_fragmentation(unopt) + 1e-9

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SegmentAllocator(threshold=-1)


class TestSmallSegments:
    def test_small_segments_cover_amount(self, profiles, make_service):
        svc = configured(profiles, make_service, rate=900.0)
        smalls = SegmentAllocator._small_segments(svc, 450.0)
        assert sum(s.throughput for s in smalls) >= 450.0
        assert all(s.instance_size <= 2 for s in smalls)

    def test_small_segments_zero_amount(self, profiles, make_service):
        svc = configured(profiles, make_service, rate=900.0)
        assert SegmentAllocator._small_segments(svc, 0.0) == []
        assert SegmentAllocator._small_segments(svc, -5.0) == []

    def test_small_segments_minimal_tail(self, profiles, make_service):
        """The final chunk uses the smallest triplet that still covers."""
        svc = configured(profiles, make_service, rate=900.0)
        tiny = SegmentAllocator._small_segments(svc, 1.0)
        assert len(tiny) == 1
