"""Unit tests for the Placement deployment map."""

import pytest

from repro.core.placement import GPUPlan, PlacedSegment, Placement


def mig_seg(sid="a", gpcs=2.0, start=0, capacity=100.0, **kw):
    defaults = dict(
        service_id=sid,
        model="resnet-50",
        kind="mig",
        gpcs=gpcs,
        batch_size=8,
        num_processes=2,
        capacity=capacity,
        latency_ms=10.0,
        sm_activity=0.9,
        start=start,
    )
    defaults.update(kw)
    return PlacedSegment(**defaults)


def mps_seg(sid="a", gpcs=3.5, capacity=100.0, **kw):
    defaults = dict(
        service_id=sid,
        model="resnet-50",
        kind="mps",
        gpcs=gpcs,
        batch_size=8,
        num_processes=1,
        capacity=capacity,
        latency_ms=10.0,
        sm_activity=0.9,
    )
    defaults.update(kw)
    return PlacedSegment(**defaults)


class TestPlacedSegment:
    def test_mig_needs_start(self):
        with pytest.raises(ValueError):
            mig_seg(start=None)

    def test_mig_integral_size(self):
        with pytest.raises(ValueError):
            mig_seg(gpcs=2.5)

    def test_mps_fractional_ok(self):
        assert mps_seg(gpcs=1.4).sm_count == pytest.approx(1.4 * 14)

    def test_bounds(self):
        with pytest.raises(ValueError):
            mps_seg(gpcs=0.0)
        with pytest.raises(ValueError):
            mps_seg(gpcs=7.5)
        with pytest.raises(ValueError):
            mig_seg(capacity=0.0)

    def test_load_fraction_clamped(self):
        s = mig_seg(capacity=100.0).with_served_rate(150.0)
        assert s.load_fraction == 1.0
        s = mig_seg(capacity=100.0).with_served_rate(50.0)
        assert s.load_fraction == 0.5


class TestGPUPlanValidation:
    def test_legal_mig_plan(self):
        plan = GPUPlan(0, [mig_seg(gpcs=4.0, start=0), mig_seg(gpcs=3.0, start=4)])
        plan.validate()

    def test_overlapping_mig_rejected(self):
        plan = GPUPlan(0, [mig_seg(gpcs=4.0, start=0), mig_seg(gpcs=7.0, start=0)])
        with pytest.raises(ValueError):
            plan.validate()

    def test_mps_quota_enforced(self):
        plan = GPUPlan(0, [mps_seg(gpcs=5.0), mps_seg(sid="b", gpcs=3.0)])
        with pytest.raises(ValueError):
            plan.validate()

    def test_no_mixing_mig_and_mps(self):
        plan = GPUPlan(0, [mig_seg(), mps_seg(sid="b", gpcs=1.0)])
        with pytest.raises(ValueError):
            plan.validate()


class TestPlacement:
    def build(self):
        p = Placement(framework="test")
        p.add(0, mig_seg(sid="a", gpcs=4.0, start=0, capacity=300.0))
        p.add(0, mig_seg(sid="b", gpcs=3.0, start=4, capacity=200.0))
        p.add(1, mig_seg(sid="a", gpcs=2.0, start=0, capacity=100.0))
        return p

    def test_num_gpus_ignores_empty(self):
        p = self.build()
        p.gpu(5)  # create empty plans up to id 5
        assert p.num_gpus == 2

    def test_drop_empty_renumbers(self):
        p = self.build()
        p.gpu(4)
        p.drop_empty_gpus()
        assert [g.gpu_id for g in p.gpus] == [0, 1]

    def test_segments_of(self):
        p = self.build()
        assert len(p.segments_of("a")) == 2
        assert p.total_capacity("a") == 400.0

    def test_service_ids(self):
        assert self.build().service_ids() == ("a", "b")

    def test_sm_accounting(self):
        p = self.build()
        assert p.allocated_sms() == pytest.approx((4 + 3 + 2) * 14)
        assert p.total_sms() == pytest.approx(2 * 98)


class TestAssignRates:
    def test_proportional(self):
        p = Placement(framework="t")
        p.add(0, mig_seg(sid="a", gpcs=1.0, start=0, capacity=300.0))
        p.add(0, mig_seg(sid="a", gpcs=1.0, start=1, capacity=100.0))
        p.assign_rates({"a": 200.0}, policy="proportional")
        rates = sorted(s.served_rate for _, s in p.iter_segments())
        assert rates == [pytest.approx(50.0), pytest.approx(150.0)]
        assert p.rates_assigned

    def test_fill_saturates_best_tp_per_gpc_first(self):
        p = Placement(framework="t")
        p.add(0, mig_seg(sid="a", gpcs=1.0, start=0, capacity=300.0))
        p.add(0, mig_seg(sid="a", gpcs=2.0, start=2, capacity=400.0))
        p.assign_rates({"a": 350.0}, policy="fill")
        by_start = {s.start: s.served_rate for _, s in p.iter_segments()}
        # 300 tp/gpc on the 1-GPC segment beats 200 on the 2-GPC one.
        assert by_start[0] == pytest.approx(300.0)
        assert by_start[2] == pytest.approx(50.0)

    def test_fill_overload_lands_on_largest(self):
        p = Placement(framework="t")
        p.add(0, mig_seg(sid="a", gpcs=1.0, start=0, capacity=100.0))
        p.assign_rates({"a": 150.0}, policy="fill")
        (_, s), = p.iter_segments()
        assert s.served_rate == pytest.approx(150.0)

    def test_unknown_policy(self):
        p = self_placement = Placement(framework="t")
        p.add(0, mig_seg())
        with pytest.raises(ValueError):
            p.assign_rates({"a": 1.0}, policy="nope")

    def test_missing_service_raises(self):
        p = Placement(framework="t")
        p.add(0, mig_seg(sid="a"))
        with pytest.raises(ValueError):
            p.assign_rates({"b": 1.0})


class TestInstanceSpecs:
    def test_mig_export(self):
        p = Placement(framework="t")
        p.add(0, mig_seg(sid="a", gpcs=4.0, start=0))
        specs = p.to_instance_specs()
        assert specs[0].size == 4
        assert specs[0].owner == "a"

    def test_mps_export_rejected(self):
        p = Placement(framework="t")
        p.add(0, mps_seg())
        with pytest.raises(ValueError):
            p.to_instance_specs()
