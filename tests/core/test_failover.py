"""Integration tests for GPU-failure recovery."""

import pytest

from repro.core import DeploymentManager, ParvaGPU, Service
from repro.core.failover import FailoverController
from repro.scenarios import scenario_services


@pytest.fixture
def deployed(profiles):
    services = scenario_services("S2")
    placement = ParvaGPU(profiles).schedule(services)
    manager = DeploymentManager(profiles)
    manager.deploy(placement)
    return services, placement, manager


class TestFailover:
    def test_capacity_restored(self, profiles, deployed):
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        result = ctrl.fail_gpu(0, services)
        for svc in services:
            assert result.placement.total_capacity(svc.id) >= svc.request_rate * (
                1 - 1e-9
            ), svc.id

    def test_result_bookkeeping(self, profiles, deployed):
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        result = ctrl.fail_gpu(0, services)
        assert result.failed_gpu == 0
        assert result.affected_services
        assert all(v > 0 for v in result.lost_capacity.values())
        assert result.gpus_before == placement.num_gpus
        result.placement.validate()

    def test_untouched_services_keep_instances(self, profiles, deployed):
        services, placement, manager = deployed
        victims = {s.service_id for s in placement.gpus[0].segments}
        survivors = set(placement.service_ids()) - victims
        ctrl = FailoverController(profiles, manager)
        result = ctrl.fail_gpu(0, services)
        for sid in survivors:
            assert result.cost.downtime_s.get(sid, 0.0) == 0.0, sid

    def test_failing_empty_gpu_rejected(self, profiles, deployed):
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        with pytest.raises(ValueError):
            ctrl.fail_gpu(99, services)

    def test_without_deployment_rejected(self, profiles):
        ctrl = FailoverController(profiles, DeploymentManager(profiles))
        with pytest.raises(RuntimeError):
            ctrl.fail_gpu(0, [])

    def test_hosted_service_missing_from_argument(self, profiles, deployed):
        """Regression: a hosted service absent from ``services`` used to
        surface as a bare KeyError deep inside allocation optimization;
        it must be a ValueError naming the missing service id."""
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        dropped = services[-1]
        subset = [s for s in services if s.id != dropped.id]
        with pytest.raises(ValueError, match=dropped.id):
            ctrl.fail_gpu(0, subset)

    def test_restore_unknown_gpu_rejected(self, profiles, deployed):
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        with pytest.raises(ValueError):
            ctrl.restore_gpu(0)  # never failed

    def test_restore_registers_spare(self, profiles, deployed):
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        ctrl.fail_gpu(0, services)
        assert ctrl.failed == {0: "mig"}
        assert ctrl.restore_gpu(0) == "mig"
        assert ctrl.failed == {}
        assert manager.spare_gpus == {0: "mig"}
        # restoring twice is an error: the GPU is back already
        with pytest.raises(ValueError):
            ctrl.restore_gpu(0)

    def test_restored_capacity_visible_to_next_replan(self, profiles, deployed):
        """A restored GPU rejoins the free pool: the next re-plan drafts it
        (by its original id) before opening a fresh GPU."""
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        ctrl.fail_gpu(0, services)
        ctrl.restore_gpu(0)
        grown = next(s for s in services if s.model == "mobilenetv2")
        # Grow far past the surviving GPUs' holes so new capacity is needed.
        new_placement, _ = manager.update_slo(
            services, grown, new_rate=grown.request_rate * 40
        )
        assert not manager.spare_gpus  # the spare was drafted...
        assert any(  # ...under its original device id
            g.gpu_id == 0 and not g.is_empty for g in new_placement.gpus
        )

    def test_failed_gpu_id_reserved_until_restore(self, profiles, deployed):
        """Regression: growth after failing the highest-id GPU used to hand
        the dead device's id to a fresh GPU (`next_gpu_id = max + 1`), so
        a later restore collided with live capacity."""
        services, placement, manager = deployed
        ctrl = FailoverController(profiles, manager)
        victim = max(g.gpu_id for g in manager.current.gpus if not g.is_empty)
        ctrl.fail_gpu(victim, services)
        grown = next(s for s in services if s.model == "mobilenetv2")
        new_placement, _ = manager.update_slo(
            services, grown, new_rate=grown.request_rate * 8
        )
        assert all(
            g.gpu_id != victim for g in new_placement.gpus if not g.is_empty
        )
        ctrl.restore_gpu(victim)  # still restorable: id never reused
        assert manager.spare_gpus == {victim: "mig"}

    def test_sequential_failures_survivable(self, profiles):
        """Losing two GPUs in a row still yields a valid, covering map."""
        services = scenario_services("S4")
        manager = DeploymentManager(profiles)
        manager.deploy(ParvaGPU(profiles).schedule(services))
        ctrl = FailoverController(profiles, manager)
        r1 = ctrl.fail_gpu(manager.current.gpus[0].gpu_id, services)
        # GPU ids are preserved, so the failed id is gone; hit the next one.
        r2 = ctrl.fail_gpu(r1.placement.gpus[0].gpu_id, services)
        r2.placement.validate()
        for svc in services:
            assert r2.placement.total_capacity(svc.id) >= svc.request_rate * (
                1 - 1e-9
            )
