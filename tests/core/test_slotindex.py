"""Unit tests for the allocator's free-slot index.

The index's contract: after any sequence of places, removals, drains, and
GPU appends (with ``touch``/``sync`` at the capacity-growing events), a
candidate query returns exactly the GPU the naive linear scan would pick
— or None exactly when the scan finds nothing.
"""

import random

import pytest

from repro.core.allocator import _GPUState
from repro.core.segments import Segment
from repro.core.slotindex import SlotIndex
from repro.gpu.geometry import get_geometry

MIG = get_geometry("mig")
MI300X = get_geometry("mi300x")


def _segment(size, geometry=MIG, sid="svc"):
    return Segment(
        service_id=sid,
        model="resnet-50",
        instance_size=size,
        batch_size=4,
        num_processes=1,
        throughput=100.0,
        latency_ms=10.0,
        sm_activity=0.5,
        geometry=geometry,
    )


def _naive_first_fit(gpus, size, fallback, geometry, limit=None):
    """Reference: lowest list position with a feasible slot."""
    for pos, state in enumerate(gpus):
        if limit is not None and pos >= limit:
            break
        if state.geometry.name != geometry.name:
            continue
        if state.has_free_slot(size, fallback=fallback):
            return pos
    return None


def _assert_matches_naive(index, gpus, geometry):
    for size in geometry.instance_sizes:
        for fallback in (False, True):
            assert index.first_candidate(
                geometry.name, size, fallback
            ) == _naive_first_fit(gpus, size, fallback, geometry), (
                size,
                fallback,
            )


class TestSlotIndex:
    def test_empty_list_has_no_candidates(self):
        index = SlotIndex([])
        assert index.first_candidate("mig", 1) is None

    def test_place_tracks_first_fit(self):
        gpus = [_GPUState(gpu_id=i) for i in range(3)]
        index = SlotIndex(gpus)
        # Fill GPU 0 with a size-7, so size queries fall through to GPU 1.
        assert index.place(_segment(7)) == 0
        assert index.first_candidate("mig", 1) == 1
        _assert_matches_naive(index, gpus, MIG)

    def test_remove_then_touch_restores_candidacy(self):
        gpus = [_GPUState(gpu_id=0), _GPUState(gpu_id=1)]
        index = SlotIndex(gpus)
        index.place(_segment(7))
        assert index.first_candidate("mig", 7) == 1
        seg, start = gpus[0].placed[0]
        gpus[0].placed.remove((seg, start))
        gpus[0].layout.remove(MIG.place(seg.instance_size, start))
        index.touch(0)
        assert index.first_candidate("mig", 7) == 0
        _assert_matches_naive(index, gpus, MIG)

    def test_sync_registers_appended_gpus(self):
        gpus = [_GPUState(gpu_id=0)]
        index = SlotIndex(gpus)
        index.place(_segment(7))
        assert index.place(_segment(7)) is None  # fleet is full
        gpus.append(_GPUState(gpu_id=1))
        index.sync()
        assert index.place(_segment(7)) == 1

    def test_limit_bounds_the_search(self):
        gpus = [_GPUState(gpu_id=i) for i in range(3)]
        index = SlotIndex(gpus)
        index.place(_segment(7))  # occupies position 0
        assert index.first_candidate("mig", 1, limit=1) is None
        assert index.first_candidate("mig", 1, limit=2) == 1
        assert index.place(_segment(1), limit=1) is None

    def test_foreign_geometry_never_matches(self):
        gpus = [
            _GPUState(gpu_id=0, geometry=MI300X),
            _GPUState(gpu_id=1, geometry=MIG),
        ]
        index = SlotIndex(gpus)
        assert index.first_candidate("mig", 1) == 1
        assert index.place(_segment(1)) == 1

    def test_uniform_size_rule_reflected(self):
        """On MI300X, placing one size evicts the others' candidacy."""
        gpus = [_GPUState(gpu_id=0, geometry=MI300X)]
        index = SlotIndex(gpus)
        assert index.place(_segment(2, geometry=MI300X)) == 0
        assert index.first_candidate("mi300x", 2) == 0  # three slots left
        assert index.first_candidate("mi300x", 4) is None  # mode is fixed
        _assert_matches_naive(index, gpus, MI300X)

    def test_rebuild_matches_fresh_index(self):
        gpus = [_GPUState(gpu_id=i) for i in range(4)]
        index = SlotIndex(gpus)
        for size in (7, 4, 3, 2, 1):
            index.place(_segment(size))
        index.rebuild()
        _assert_matches_naive(index, gpus, MIG)

    @pytest.mark.parametrize("geometry", [MIG, MI300X], ids=lambda g: g.name)
    def test_randomized_operations_match_naive(self, geometry):
        """Fuzz place/remove/drain/append; the index never drifts."""
        rng = random.Random(1234)
        gpus = []
        index = SlotIndex(gpus)
        for step in range(300):
            op = rng.random()
            if op < 0.55:  # place a random size via the index
                size = rng.choice(geometry.instance_sizes)
                seg = _segment(size, geometry=geometry)
                expected = _naive_first_fit(
                    gpus, size, False, geometry
                )
                if expected is None:
                    expected = _naive_first_fit(gpus, size, True, geometry)
                assert (index.place(seg) is not None) == (expected is not None)
            elif op < 0.75 and gpus:  # remove a random placed segment
                pos = rng.randrange(len(gpus))
                if gpus[pos].placed:
                    seg, start = rng.choice(gpus[pos].placed)
                    gpus[pos].placed.remove((seg, start))
                    gpus[pos].layout.remove(
                        geometry.place(seg.instance_size, start)
                    )
                    index.touch(pos)
            elif op < 0.85 and gpus:  # drain a whole GPU
                pos = rng.randrange(len(gpus))
                gpus[pos].free_all()
                index.touch(pos)
            else:  # append a fresh GPU
                gpus.append(
                    _GPUState(gpu_id=len(gpus), geometry=geometry)
                )
                index.sync()
            if step % 25 == 0:
                _assert_matches_naive(index, gpus, geometry)
        _assert_matches_naive(index, gpus, geometry)
