"""Unit tests for the Service object (Table II)."""

import pytest

from repro.core.service import Service


class TestConstruction:
    def test_valid(self):
        s = Service("a", "resnet-50", slo_latency_ms=200, request_rate=100)
        assert s.spec.name == "resnet-50"

    def test_effective_slo_is_half(self):
        # SIV-A: internal latency = half the target, following Nexus.
        s = Service("a", "resnet-50", slo_latency_ms=200, request_rate=100)
        assert s.effective_slo_ms == 100.0

    def test_custom_slo_factor(self):
        s = Service(
            "a", "resnet-50", slo_latency_ms=200, request_rate=100,
            slo_factor=0.8,
        )
        assert s.effective_slo_ms == pytest.approx(160.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Service("a", "resnet-50", slo_latency_ms=0, request_rate=1)
        with pytest.raises(ValueError):
            Service("a", "resnet-50", slo_latency_ms=1, request_rate=0)
        with pytest.raises(ValueError):
            Service(
                "a", "resnet-50", slo_latency_ms=1, request_rate=1,
                slo_factor=0.0,
            )

    def test_unknown_model_fails_fast(self):
        with pytest.raises(KeyError):
            Service("a", "nope", slo_latency_ms=1, request_rate=1)


class TestPlanAccessors:
    def test_empty_plan(self, make_service):
        s = make_service()
        assert s.segments() == []
        assert s.planned_throughput() == 0.0
        assert s.planned_gpcs() == 0

    def test_reset_plan(self, profiles, make_service):
        from repro.core.configurator import SegmentConfigurator

        s = make_service(rate=2000.0)
        SegmentConfigurator(profiles).configure([s])
        assert s.segments()
        s.reset_plan()
        assert s.opt_seg is None
        assert s.num_opt_seg == 0
        assert s.last_seg is None
        assert not s.opt_tri_array
