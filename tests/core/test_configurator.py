"""Unit tests for Algorithm 1: Optimal Triplet Decision + Demand Matching."""

import math

import pytest

from repro.core.configurator import SegmentConfigurator
from repro.core.service import InfeasibleServiceError, Service


@pytest.fixture
def configurator(profiles):
    return SegmentConfigurator(profiles)


class TestTripletDecision:
    def test_every_triplet_beats_the_slo(self, configurator, make_service):
        svc = make_service(slo=150.0)
        tri = configurator.triplet_decision(svc)
        for entry in tri.values():
            assert entry.latency_ms < svc.effective_slo_ms

    def test_one_triplet_per_size(self, configurator, make_service):
        svc = make_service(slo=400.0)
        tri = configurator.triplet_decision(svc)
        assert set(tri) <= {1, 2, 3, 4, 7}
        for size, entry in tri.items():
            assert entry.instance_size == size

    def test_triplet_maximizes_throughput(self, configurator, profiles, make_service):
        svc = make_service(slo=400.0)
        tri = configurator.triplet_decision(svc)
        table = profiles[svc.model]
        for size, best in tri.items():
            for e in table.entries_for_size(size):
                if e.latency_ms < svc.effective_slo_ms:
                    assert e.throughput <= best.throughput * (1 + 1e-9)

    def test_tight_slo_drops_small_sizes(self, configurator):
        svc = Service("t", "vgg-19", slo_latency_ms=12.0, request_rate=100)
        tri = configurator.triplet_decision(svc)
        assert 1 not in tri  # a 1-GPC slice cannot run VGG-19 in 6 ms
        assert 7 in tri

    def test_impossible_slo_raises(self, configurator):
        svc = Service("t", "bert-large", slo_latency_ms=2.0, request_rate=1)
        with pytest.raises(InfeasibleServiceError):
            configurator.triplet_decision(svc)

    def test_unprofiled_model_raises(self, make_service):
        empty = SegmentConfigurator({})
        with pytest.raises(InfeasibleServiceError):
            empty.triplet_decision(make_service())

    def test_single_process_restriction(self, profiles, make_service):
        single = SegmentConfigurator(profiles, max_processes=1)
        svc = make_service(slo=400.0)
        for entry in single.triplet_decision(svc).values():
            assert entry.num_processes == 1

    def test_max_processes_validation(self, profiles):
        with pytest.raises(ValueError):
            SegmentConfigurator(profiles, max_processes=0)


class TestDemandMatching:
    def test_opt_seg_maximizes_tp_per_gpc(self, configurator, make_service):
        svc = make_service(rate=3000.0)
        configurator.configure([svc])
        best = max(
            e.throughput_per_gpc for e in svc.opt_tri_array.values()
        )
        assert svc.opt_seg.throughput_per_gpc == pytest.approx(best)

    def test_num_opt_seg_is_floor(self, configurator, make_service):
        svc = make_service(rate=3000.0)
        configurator.configure([svc])
        assert svc.num_opt_seg == math.floor(3000.0 / svc.opt_seg.throughput)

    def test_capacity_covers_rate(self, configurator, make_service):
        for rate in (50, 500, 5000, 20000):
            svc = make_service(sid=f"r{rate}", rate=float(rate))
            configurator.configure([svc])
            assert svc.planned_throughput() >= rate * (1 - 1e-9)

    def test_small_rate_single_segment(self, configurator, make_service):
        """The num_opt_seg = 0 path: one right-sized segment."""
        svc = make_service(rate=30.0)
        configurator.configure([svc])
        assert svc.num_opt_seg == 0
        assert svc.last_seg is not None
        assert svc.last_seg.throughput >= 30.0

    def test_last_segment_is_smallest_adequate_size(
        self, configurator, make_service
    ):
        svc = make_service(rate=30.0)
        configurator.configure([svc])
        # every smaller profiled size must be unable to cover the rate
        for size, entry in svc.opt_tri_array.items():
            if size < svc.last_seg.instance_size:
                assert entry.throughput < 30.0

    def test_last_segment_rate_matched(self, configurator, profiles, make_service):
        """Within its size, the last segment is the tightest feasible fit."""
        svc = make_service(rate=30.0)
        configurator.configure([svc])
        last = svc.last_seg
        table = profiles[svc.model]
        for e in table.entries_for_size(last.instance_size):
            if (
                e.latency_ms < svc.effective_slo_ms
                and e.throughput >= 30.0
            ):
                assert last.throughput <= e.throughput * (1 + 1e-9)

    def test_exact_multiple_has_no_last_segment(self, configurator, make_service):
        probe = make_service(sid="probe", rate=1000.0)
        configurator.configure([probe])
        tp = probe.opt_seg.throughput
        svc = make_service(sid="exact", rate=3 * tp)
        configurator.configure([svc])
        assert svc.num_opt_seg == 3
        assert svc.last_seg is None

    def test_configure_returns_all(self, configurator, make_service):
        services = [make_service(sid=f"s{i}", rate=100.0 * (i + 1)) for i in range(4)]
        out = configurator.configure(services)
        assert out == services
        assert all(s.opt_seg is not None for s in services)


class TestEquation2Optimality:
    """Eq. 1/2: maximizing tp/GPC minimizes total GPCs for large rates."""

    def test_greedy_beats_alternatives_asymptotically(
        self, configurator, profiles, make_service
    ):
        svc = make_service(rate=50000.0)
        configurator.configure([svc])
        greedy_gpcs = svc.planned_gpcs()
        # any single-size plan must use at least as many GPCs (up to the
        # one-segment rounding of the last segment)
        for size, entry in svc.opt_tri_array.items():
            n = math.ceil(50000.0 / entry.throughput)
            assert greedy_gpcs <= n * size + 7
