"""Unit tests for the ParvaGPU facade, predictor, and deployment manager."""

import pytest

from repro.core import DeploymentManager, ParvaGPU, Predictor, Service
from repro.core.segments import Segment


class TestFacade:
    def test_names(self, profiles):
        assert ParvaGPU(profiles).name == "parvagpu"
        assert ParvaGPU(profiles, use_mps=False).name == "parvagpu-single"
        assert ParvaGPU(profiles, optimize=False).name == "parvagpu-unoptimized"

    def test_schedule_records_delay_and_rates(self, profiles, make_service):
        placement = ParvaGPU(profiles).schedule([make_service(rate=900.0)])
        assert placement.scheduling_delay_ms > 0
        assert placement.rates_assigned
        total = sum(s.served_rate for _, s in placement.iter_segments())
        assert total == pytest.approx(900.0)

    def test_single_variant_uses_one_process(self, profiles, make_service):
        placement = ParvaGPU(profiles, use_mps=False).schedule(
            [make_service(rate=900.0)]
        )
        assert all(
            s.num_processes == 1 for _, s in placement.iter_segments()
        )

    def test_mps_variant_never_worse(self, profiles, make_service):
        for rate in (800.0, 4000.0, 12000.0):
            multi = ParvaGPU(profiles).schedule([make_service(sid="m", rate=rate)])
            single = ParvaGPU(profiles, use_mps=False).schedule(
                [make_service(sid="s", rate=rate)]
            )
            assert multi.num_gpus <= single.num_gpus


class TestSegmentType:
    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            Segment("s", "m", 5, 8, 1, 100.0, 10.0, 0.9)
        with pytest.raises(ValueError):
            Segment("s", "m", 1, 0, 1, 100.0, 10.0, 0.9)
        with pytest.raises(ValueError):
            Segment("s", "m", 1, 8, 1, 0.0, 10.0, 0.9)

    def test_describe(self):
        seg = Segment("svc", "m", 3, 8, 2, 1234.0, 10.0, 0.9)
        assert "svc@3g" in seg.describe()
        assert seg.sm_count == 42
        assert seg.throughput_per_gpc == pytest.approx(1234.0 / 3)


class TestPredictor:
    def test_prediction_fields(self, profiles, make_service):
        pred = Predictor(ParvaGPU(profiles)).predict([make_service(rate=900.0)])
        assert pred.framework == "parvagpu"
        assert pred.num_gpus == pred.placement.num_gpus
        assert pred.total_demand == pytest.approx(900.0)
        assert pred.total_capacity >= pred.total_demand
        assert pred.overprovision_factor >= 1.0


class TestDeploymentManager:
    def test_deploy_creates_instances(self, profiles, make_service):
        services = [make_service(sid="a", rate=700.0)]
        placement = ParvaGPU(profiles).schedule(services)
        mgr = DeploymentManager(profiles)
        plan = mgr.deploy(placement)
        assert len(plan.create) == len(list(placement.iter_segments()))
        assert mgr.cluster.used_gpu_count() == placement.num_gpus

    def test_redeploy_same_map_is_noop(self, profiles, make_service):
        services = [make_service(sid="a", rate=700.0)]
        placement = ParvaGPU(profiles).schedule(services)
        mgr = DeploymentManager(profiles)
        mgr.deploy(placement)
        plan = mgr.deploy(placement)
        assert plan.is_noop

    def test_update_slo_keeps_other_services(self, profiles):
        services = [
            Service("a", "resnet-50", slo_latency_ms=250, request_rate=700),
            Service("b", "vgg-16", slo_latency_ms=400, request_rate=500),
        ]
        placement = ParvaGPU(profiles).schedule(services)
        mgr = DeploymentManager(profiles)
        mgr.deploy(placement)
        b_before = {
            (gpu_id, s.start, s.gpcs)
            for gpu_id, s in placement.iter_segments()
            if s.service_id == "b"
        }
        new_placement, _ = mgr.update_slo(
            services, services[0], new_slo_ms=120.0, new_rate=2100.0
        )
        b_after = {
            (gpu_id, s.start, s.gpcs)
            for gpu_id, s in new_placement.iter_segments()
            if s.service_id == "b"
        }
        assert b_before == b_after
        assert new_placement.total_capacity("a") >= 2100.0

    def test_update_before_deploy_raises(self, profiles, make_service):
        mgr = DeploymentManager(profiles)
        with pytest.raises(RuntimeError):
            mgr.update_slo([make_service()], make_service())
