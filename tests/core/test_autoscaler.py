"""Integration tests for trace-driven autoscaling."""

import pytest

from repro.core import DeploymentManager, ParvaGPU, Service
from repro.core.autoscaler import Autoscaler
from repro.core.hetero import make_mixed_scheduler
from repro.sim.traces import Epoch, RateTrace, diurnal_trace, surge_trace


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


class TestAutoscaler:
    def test_fleet_follows_load(self, profiles, services):
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=4.0,
                        surge_start_s=100.0, surge_end_s=200.0),
        ]
        report = Autoscaler(profiles).run(services, traces)
        gpus = dict(report.gpu_series())
        assert gpus[100.0] > gpus[0.0]  # surge grows the fleet
        assert gpus[200.0] < gpus[100.0]  # and it shrinks back

    def test_steps_only_on_rate_changes(self, profiles, services):
        flat = RateTrace("a", (Epoch(0.0, 2000.0), Epoch(50.0, 2000.0)))
        report = Autoscaler(profiles).run(services, [flat])
        assert len(report.steps) == 1  # the 50 s epoch changed nothing

    def test_unchanged_service_not_reconfigured(self, profiles, services):
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=3.0,
                        surge_start_s=60.0, surge_end_s=120.0),
        ]
        report = Autoscaler(profiles).run(services, traces)
        surge_step = next(s for s in report.steps if s.time_s == 60.0)
        # service b kept at least one instance live through the transition
        assert surge_step.unchanged_instances >= 1
        assert surge_step.cost.downtime_s.get("b", 0.0) == 0.0

    def test_diurnal_day(self, profiles, services):
        traces = [
            diurnal_trace("a", base_rate=2000, amplitude=0.5, epochs=6),
            diurnal_trace("b", base_rate=4000, amplitude=0.5, epochs=6,
                          phase=1.0),
        ]
        report = Autoscaler(profiles, spare_gpus=4).run(services, traces)
        assert len(report.steps) == 6
        assert report.peak_gpus >= report.mean_gpus
        assert report.total_reconfig_ops > 0
        assert all(s.zero_downtime for s in report.steps)

    def test_measured_compliance(self, profiles, services):
        traces = [diurnal_trace("a", base_rate=2000, amplitude=0.3, epochs=3)]
        report = Autoscaler(profiles).run(services, traces, measure_s=0.5)
        assert len(report.steps) == 3
        for step in report.steps:
            assert step.compliance is not None
            assert 0.0 <= step.compliance <= 1.0
        # scheduled capacity always covers the traced rates here
        assert report.mean_compliance > 0.95

    def test_measurement_off_by_default(self, profiles, services):
        traces = [diurnal_trace("a", base_rate=2000, epochs=2)]
        report = Autoscaler(profiles).run(services, traces)
        assert all(s.compliance is None for s in report.steps)
        assert report.mean_compliance is None

    def test_horizon_cuts_trace(self, profiles, services):
        traces = [diurnal_trace("a", base_rate=2000, epochs=10,
                                period_s=1000.0)]
        report = Autoscaler(profiles).run(services, traces, horizon_s=500.0)
        assert all(s.time_s < 500.0 for s in report.steps)

    def test_unknown_trace_service(self, profiles, services):
        bad = [diurnal_trace("ghost", base_rate=100)]
        with pytest.raises(ValueError):
            Autoscaler(profiles).run(services, bad)

    def test_unchanged_accumulates_over_multiple_replans(self, profiles):
        """Several rates moving in one epoch: unchanged counts must sum.

        The regression: ``unchanged`` was overwritten per re-planned
        service, so a step reported only the *last* plan's untouched
        instances.  The expectation is replicated by hand: run the same
        first-epoch deployment, then the same per-service SLO updates in
        the autoscaler's (sorted) order, summing each plan's unchanged
        list — the step must report exactly that sum.
        """
        services = [
            Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
            Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
            Service("c", "densenet-121", slo_latency_ms=200, request_rate=1500),
        ]
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=3.0,
                        surge_start_s=60.0, surge_end_s=120.0),
            surge_trace("b", base_rate=4000, surge_factor=2.0,
                        surge_start_s=60.0, surge_end_s=120.0),
        ]
        report = Autoscaler(profiles).run(services, traces)
        surge_step = next(s for s in report.steps if s.time_s == 60.0)

        work = [
            Service(s.id, s.model, slo_latency_ms=s.slo_latency_ms,
                    request_rate=s.request_rate)
            for s in services
        ]
        by_id = {s.id: s for s in work}
        for svc in work:
            svc.reset_plan()
        manager = DeploymentManager(profiles)
        manager.deploy(ParvaGPU(profiles).schedule(work))
        expected = 0
        for sid, new_rate in (("a", 6000.0), ("b", 8000.0)):
            _, plan = manager.update_slo(work, by_id[sid], new_rate=new_rate)
            expected += len(plan.unchanged)
        assert expected > 0
        assert surge_step.unchanged_instances == expected

    def test_run_does_not_mutate_caller_services(self, profiles, services):
        """A trace run must leave the caller's Service objects reusable."""
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=4.0,
                        surge_start_s=100.0, surge_end_s=200.0),
        ]
        before = [
            (s.id, s.request_rate, s.slo_latency_ms, s.slo_factor)
            for s in services
        ]
        Autoscaler(profiles).run(services, traces)
        after = [
            (s.id, s.request_rate, s.slo_latency_ms, s.slo_factor)
            for s in services
        ]
        assert before == after
        for svc in services:  # Algorithm-1 plan state untouched too
            assert svc.opt_tri_array == {}
            assert svc.opt_seg is None
            assert svc.num_opt_seg == 0
            assert svc.last_seg is None

    def test_mixed_geometry_fleet(self, profiles):
        """Autoscaling a heterogeneous (mig + mi300x) deployment.

        The first epoch schedules through HeterogeneousParvaGPU, so the
        fleet genuinely spans both geometries; subsequent epochs walk the
        SIII-F incremental path, whose per-GPU states follow each plan's
        own geometry (re-planned services land on the manager's profile
        geometry, MIG — untouched MI300X plans keep serving).
        """
        # Eq.-2 pool assignment at these SLOs: resnet-50@250ms scores
        # best on MI300X, mobilenetv2@150ms on MIG — so surging the
        # mobilenet exercises incremental re-plans on the MIG pool while
        # the MI300X-resident service keeps serving untouched.
        services = [
            Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
            Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        ]
        scaler = Autoscaler(profiles, scheduler=make_mixed_scheduler())
        traces = [
            surge_trace("b", base_rate=4000, surge_factor=4.0,
                        surge_start_s=100.0, surge_end_s=200.0),
        ]
        report = scaler.run(services, traces)
        assert len(report.steps) == 3
        placement = scaler.manager.current
        placement.validate()
        assert set(placement.geometries()) == {"mig", "mi300x"}
        gpus = dict(report.gpu_series())
        assert gpus[100.0] > gpus[0.0]
        assert gpus[200.0] < gpus[100.0]
        for svc in services:
            capacity = placement.total_capacity(svc.id)
            assert capacity >= svc.request_rate * (1 - 1e-9), svc.id
        # the MI300X-resident service was never re-planned: no downtime
        for step in report.steps[1:]:
            assert step.cost.downtime_s.get("a", 0.0) == 0.0

    def test_mixed_geometry_untouched_pool_keeps_instances(self, profiles):
        """An epoch that only moves a MIG service's rate leaves every
        MI300X instance running (unchanged across the reconfiguration)."""
        services = [
            Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
            Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        ]
        scaler = Autoscaler(profiles, scheduler=make_mixed_scheduler())
        traces = [
            surge_trace("b", base_rate=4000, surge_factor=3.0,
                        surge_start_s=50.0, surge_end_s=100.0),
        ]
        scaler.run(services, traces, horizon_s=60.0)
        placement = scaler.manager.current
        amd_plans = [g for g in placement.gpus if g.geometry == "mi300x"]
        assert amd_plans, "resnet-50 should live on the MI300X pool"
        assert all(
            seg.service_id == "a" for g in amd_plans for seg in g.segments
        )

    def test_mixed_geometry_measured_compliance(self, profiles):
        """Serving measurement crosses geometries: the simulator consumes
        the merged heterogeneous placement directly."""
        services = [
            Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
            Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        ]
        scaler = Autoscaler(profiles, scheduler=make_mixed_scheduler())
        traces = [diurnal_trace("b", base_rate=4000, amplitude=0.3, epochs=2)]
        report = scaler.run(services, traces, measure_s=0.4)
        assert report.mean_compliance is not None
        assert report.mean_compliance > 0.95

    def test_two_runs_from_same_services_agree(self, profiles, services):
        """Reusing one service list for two experiments is now safe."""
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=4.0,
                        surge_start_s=100.0, surge_end_s=200.0),
        ]
        first = Autoscaler(profiles).run(services, traces)
        second = Autoscaler(profiles).run(services, traces)
        assert [s.num_gpus for s in first.steps] == [
            s.num_gpus for s in second.steps
        ]
        assert [s.rates for s in first.steps] == [
            s.rates for s in second.steps
        ]
