"""Integration tests for trace-driven autoscaling."""

import pytest

from repro.core import Service
from repro.core.autoscaler import Autoscaler
from repro.sim.traces import Epoch, RateTrace, diurnal_trace, surge_trace


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


class TestAutoscaler:
    def test_fleet_follows_load(self, profiles, services):
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=4.0,
                        surge_start_s=100.0, surge_end_s=200.0),
        ]
        report = Autoscaler(profiles).run(services, traces)
        gpus = dict(report.gpu_series())
        assert gpus[100.0] > gpus[0.0]  # surge grows the fleet
        assert gpus[200.0] < gpus[100.0]  # and it shrinks back

    def test_steps_only_on_rate_changes(self, profiles, services):
        flat = RateTrace("a", (Epoch(0.0, 2000.0), Epoch(50.0, 2000.0)))
        report = Autoscaler(profiles).run(services, [flat])
        assert len(report.steps) == 1  # the 50 s epoch changed nothing

    def test_unchanged_service_not_reconfigured(self, profiles, services):
        traces = [
            surge_trace("a", base_rate=2000, surge_factor=3.0,
                        surge_start_s=60.0, surge_end_s=120.0),
        ]
        report = Autoscaler(profiles).run(services, traces)
        surge_step = next(s for s in report.steps if s.time_s == 60.0)
        # service b kept at least one instance live through the transition
        assert surge_step.unchanged_instances >= 1
        assert surge_step.cost.downtime_s.get("b", 0.0) == 0.0

    def test_diurnal_day(self, profiles, services):
        traces = [
            diurnal_trace("a", base_rate=2000, amplitude=0.5, epochs=6),
            diurnal_trace("b", base_rate=4000, amplitude=0.5, epochs=6,
                          phase=1.0),
        ]
        report = Autoscaler(profiles, spare_gpus=4).run(services, traces)
        assert len(report.steps) == 6
        assert report.peak_gpus >= report.mean_gpus
        assert report.total_reconfig_ops > 0
        assert all(s.zero_downtime for s in report.steps)

    def test_horizon_cuts_trace(self, profiles, services):
        traces = [diurnal_trace("a", base_rate=2000, epochs=10,
                                period_s=1000.0)]
        report = Autoscaler(profiles).run(services, traces, horizon_s=500.0)
        assert all(s.time_s < 500.0 for s in report.steps)

    def test_unknown_trace_service(self, profiles, services):
        bad = [diurnal_trace("ghost", base_rate=100)]
        with pytest.raises(ValueError):
            Autoscaler(profiles).run(services, bad)
