"""Unit tests for the MI300X XCD partition geometry (mirrors test_mig.py)."""

import pytest

from repro.gpu.amd import (
    COMPUTE_MODES,
    CUS_PER_XCD,
    MI300X_GEOMETRY,
    MI300X_MEMORY_GB,
    NUM_XCDS,
    compute_mode_for,
    enumerate_modes,
    legal_memory_modes,
)
from repro.gpu.geometry import PartitionLayout
from repro.gpu.slices import popcount, slice_indices


class TestProfiles:
    def test_sizes_are_the_four_modes(self):
        assert MI300X_GEOMETRY.instance_sizes == (1, 2, 4, 8)
        assert set(COMPUTE_MODES.values()) == set(MI300X_GEOMETRY.instance_sizes)

    def test_no_odd_sizes(self):
        # XCD modes are power-of-two tilings; 3, 5, 6, 7 do not exist.
        for bad in (0, 3, 5, 6, 7, 9):
            with pytest.raises(ValueError):
                MI300X_GEOMETRY.legal_starts(bad)

    def test_memory_map_is_proportional_hbm_split(self):
        # 192 GB HBM: SPX owns it all, DPX 96, QPX 48, CPX 24.
        assert [MI300X_GEOMETRY.memory_map[s] for s in (8, 4, 2, 1)] == [
            192.0,
            96.0,
            48.0,
            24.0,
        ]
        assert MI300X_GEOMETRY.total_memory_gb == MI300X_MEMORY_GB

    def test_profile_names(self):
        assert MI300X_GEOMETRY.profile_name(8) == "spx.192gb"
        assert MI300X_GEOMETRY.profile_name(1) == "cpx.24gb"

    def test_compute_mode_names(self):
        assert compute_mode_for(8) == "SPX"
        assert compute_mode_for(4) == "DPX"
        assert compute_mode_for(2) == "QPX"
        assert compute_mode_for(1) == "CPX"
        with pytest.raises(ValueError):
            compute_mode_for(3)

    def test_compute_units(self):
        assert MI300X_GEOMETRY.sms_per_slice == CUS_PER_XCD
        assert MI300X_GEOMETRY.total_sms == 304  # 8 XCDs x 38 CUs


class TestLegalStarts:
    def test_sizes_tile_the_device(self):
        assert MI300X_GEOMETRY.legal_starts(8) == (0,)
        assert MI300X_GEOMETRY.legal_starts(4) == (0, 4)
        assert MI300X_GEOMETRY.legal_starts(2) == (0, 2, 4, 6)
        assert MI300X_GEOMETRY.legal_starts(1) == tuple(range(8))

    def test_no_extended_rule_set(self):
        # AMD has no analogue of MIG's extended slot-5 rule.
        for size in MI300X_GEOMETRY.instance_sizes:
            assert MI300X_GEOMETRY.legal_starts(
                size, extended=True
            ) == MI300X_GEOMETRY.legal_starts(size, extended=False)

    def test_no_blocked_slices(self):
        # Tilings are exact: occupied == [start, start+size) for every slot.
        for size in MI300X_GEOMETRY.instance_sizes:
            for start in MI300X_GEOMETRY.legal_starts(size):
                mask = MI300X_GEOMETRY.occupied_mask(size, start)
                assert popcount(mask, num_slices=NUM_XCDS) == size
                assert slice_indices(mask, num_slices=NUM_XCDS) == tuple(
                    range(start, start + size)
                )


class TestMemoryModes:
    def test_nps4_requires_cpx(self):
        # Guide: #memory partitions <= #compute partitions; NPS4 needs CPX.
        assert legal_memory_modes(1) == ("NPS1", "NPS4")
        for size in (2, 4, 8):
            assert legal_memory_modes(size) == ("NPS1",)

    def test_memory_invariants(self):
        # Memory shares mirror the MIG invariants of test_mig: the biggest
        # instance owns the board and capacity scales with slice count.
        geo = MI300X_GEOMETRY
        assert geo.instance_memory_gb(geo.whole_gpu_size) == MI300X_MEMORY_GB
        for size in geo.instance_sizes:
            assert geo.instance_memory_gb(size) == pytest.approx(
                MI300X_MEMORY_GB * size / NUM_XCDS
            )

    def test_feasible_sizes_by_footprint(self):
        # A 30 GB workload fits everything but a CPX partition.
        assert MI300X_GEOMETRY.feasible_sizes(30.0) == (2, 4, 8)
        # A 100 GB workload only fits SPX.
        assert MI300X_GEOMETRY.feasible_sizes(100.0) == (8,)


class TestUniformModeLayouts:
    def test_mixed_sizes_rejected(self):
        # Compute-partition modes are device-wide: DPX + QPX cannot coexist.
        layout = PartitionLayout(MI300X_GEOMETRY)
        layout.add(MI300X_GEOMETRY.place(4, 0))
        assert not layout.can_add(2, 4)
        assert not layout.can_add(1, 7)
        assert layout.can_add(4, 4)
        with pytest.raises(ValueError):
            layout.add(MI300X_GEOMETRY.place(2, 4))

    def test_overlap_rejected(self):
        layout = PartitionLayout(MI300X_GEOMETRY)
        layout.add(MI300X_GEOMETRY.place(4, 0))
        with pytest.raises(ValueError):
            layout.add(MI300X_GEOMETRY.place(4, 0))

    def test_remove_restores(self):
        layout = PartitionLayout(MI300X_GEOMETRY)
        inst = MI300X_GEOMETRY.place(8, 0)
        layout.add(inst)
        assert not layout.can_add(8, 0)
        layout.remove(inst)
        assert layout.can_add(8, 0)
        assert len(layout) == 0

    def test_used_slices_counts_compute(self):
        layout = PartitionLayout(
            MI300X_GEOMETRY,
            [MI300X_GEOMETRY.place(2, 0), MI300X_GEOMETRY.place(2, 2)],
        )
        assert layout.used_gpcs == 4
        assert layout.sizes() == (2, 2)


class TestModeEnumeration:
    def test_exactly_four_modes(self):
        # The AMD Figure-1 analogue: SPX, DPX, QPX, CPX — nothing else.
        assert len(enumerate_modes()) == 4

    def test_mode_shapes(self):
        sizes = [layout.sizes() for layout in enumerate_modes()]
        assert sizes == [(8,), (4, 4), (2, 2, 2, 2), (1,) * 8]

    def test_all_maximal_and_unique(self):
        layouts = enumerate_modes()
        sigs = {l.signature() for l in layouts}
        assert len(sigs) == len(layouts)
        for l in layouts:
            assert l.is_maximal()

    def test_every_mode_uses_all_xcds(self):
        # No blocked slices means every maximal layout covers the device.
        for l in enumerate_modes():
            assert l.used_gpcs == NUM_XCDS
