"""Unit tests for the MPS daemon model."""

import pytest

from repro.gpu.mps import MAX_PROCESSES_PER_SEGMENT, MPSContext, MPSError


class TestLaunch:
    def test_launch_assigns_pids(self):
        ctx = MPSContext()
        p1 = ctx.launch("svc")
        p2 = ctx.launch("svc")
        assert p1.pid != p2.pid
        assert ctx.num_processes == 2

    def test_homogeneity_enforced(self):
        ctx = MPSContext(homogeneous_only=True)
        ctx.launch("a")
        with pytest.raises(MPSError):
            ctx.launch("b")

    def test_heterogeneous_allowed_when_configured(self):
        ctx = MPSContext(homogeneous_only=False, max_processes=4)
        ctx.launch("a")
        ctx.launch("b")
        assert ctx.workloads == ("a", "b")

    def test_max_processes(self):
        ctx = MPSContext()
        for _ in range(MAX_PROCESSES_PER_SEGMENT):
            ctx.launch("svc")
        with pytest.raises(MPSError):
            ctx.launch("svc")

    def test_quota_validation(self):
        ctx = MPSContext()
        with pytest.raises(MPSError):
            ctx.launch("svc", active_thread_pct=0.0)
        with pytest.raises(MPSError):
            ctx.launch("svc", active_thread_pct=101.0)


class TestTerminate:
    def test_terminate_by_pid(self):
        ctx = MPSContext()
        p = ctx.launch("svc")
        ctx.terminate(p.pid)
        assert ctx.num_processes == 0

    def test_terminate_unknown_pid(self):
        with pytest.raises(MPSError):
            MPSContext().terminate(42)

    def test_terminate_all(self):
        ctx = MPSContext()
        ctx.launch("svc")
        ctx.launch("svc")
        ctx.terminate_all()
        assert ctx.num_processes == 0

    def test_total_quota(self):
        ctx = MPSContext()
        ctx.launch("svc", active_thread_pct=60.0)
        ctx.launch("svc", active_thread_pct=60.0)
        assert ctx.total_active_thread_pct() == pytest.approx(120.0)
