"""Unit tests for the multi-GPU cluster and reconfiguration planning."""

import pytest

from repro.gpu.cluster import Cluster, InstanceSpec
from repro.gpu.gpu import GPUError


def spec(gpu_id, size, start, owner, procs=1):
    return InstanceSpec(
        gpu_id=gpu_id, size=size, start=start, owner=owner, num_processes=procs
    )


class TestPool:
    def test_initial_capacity(self):
        assert len(Cluster(3)) == 3

    def test_add_gpu_numbers_sequentially(self):
        c = Cluster(1)
        g = c.add_gpu()
        assert g.gpu_id == 1

    def test_ensure_capacity(self):
        c = Cluster()
        c.ensure_capacity(4)
        assert len(c) == 4
        c.ensure_capacity(2)  # never shrinks
        assert len(c) == 4

    def test_unknown_gpu(self):
        with pytest.raises(GPUError):
            Cluster(1).gpu(5)

    def test_used_gpu_count_ignores_empty(self):
        c = Cluster(3)
        c.gpu(1).create_instance(1, 0, owner="a")
        assert c.used_gpu_count() == 1


class TestApplySpecs:
    def test_grows_and_launches_processes(self):
        c = Cluster()
        c.apply_specs([spec(0, 4, 0, "a", procs=2), spec(1, 7, 0, "b")])
        assert len(c) == 2
        a = c.instances_of("a")
        assert len(a) == 1
        assert a[0][1].mps.num_processes == 2

    def test_iteration(self):
        c = Cluster()
        c.apply_specs([spec(0, 3, 4, "a"), spec(0, 2, 0, "b")])
        owners = sorted(i.owner for _, i in c.instances())
        assert owners == ["a", "b"]


class TestReconfiguration:
    def test_noop_plan(self):
        c = Cluster()
        target = [spec(0, 4, 0, "a")]
        c.apply_specs(target)
        plan = c.plan_reconfiguration(target)
        assert plan.is_noop
        assert len(plan.unchanged) == 1

    def test_changed_service_replanned(self):
        c = Cluster()
        c.apply_specs([spec(0, 4, 0, "a"), spec(0, 3, 4, "b")])
        # 'a' moves to a size-2; 'b' stays.
        plan = c.plan_reconfiguration([spec(0, 2, 0, "a"), spec(0, 3, 4, "b")])
        assert len(plan.unchanged) == 1
        assert len(plan.destroy) == 1
        assert len(plan.create) == 1
        assert plan.num_operations == 2

    def test_execute_applies_diff(self):
        c = Cluster()
        c.apply_specs([spec(0, 4, 0, "a"), spec(0, 3, 4, "b")])
        plan = c.plan_reconfiguration([spec(0, 2, 0, "a"), spec(0, 3, 4, "b")])
        c.execute(plan)
        snap = c.gpu(0).snapshot()
        assert (0, 2, "a") in snap
        assert (4, 3, "b") in snap

    def test_duplicate_instances_matched_once(self):
        c = Cluster()
        c.apply_specs([spec(0, 1, 0, "a"), spec(0, 1, 1, "a")])
        plan = c.plan_reconfiguration([spec(0, 1, 0, "a"), spec(0, 1, 1, "a")])
        assert plan.is_noop

    def test_clear(self):
        c = Cluster()
        c.apply_specs([spec(0, 7, 0, "a")])
        c.clear()
        assert c.used_gpu_count() == 0
