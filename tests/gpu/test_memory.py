"""Unit tests for the framebuffer capacity model."""

import pytest

from repro.gpu.memory import (
    MemoryError_,
    check_fits,
    fits_in_memory,
    instance_memory_gb,
)


def test_capacity_map():
    assert instance_memory_gb(1) == 10
    assert instance_memory_gb(3) == 40
    assert instance_memory_gb(7) == 80


def test_unknown_size():
    with pytest.raises(ValueError):
        instance_memory_gb(5)


def test_fits_boundary():
    assert fits_in_memory(10.0, 1)
    assert not fits_in_memory(10.1, 1)


def test_fits_negative_requirement():
    with pytest.raises(ValueError):
        fits_in_memory(-1.0, 1)


def test_check_fits_raises():
    with pytest.raises(MemoryError_):
        check_fits(11.0, 1)
    check_fits(9.0, 1)  # no raise
