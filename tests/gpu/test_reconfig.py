"""Unit tests for the reconfiguration cost model (SIII-F)."""

import pytest

from repro.gpu.cluster import Cluster, InstanceSpec, ReconfigurationPlan
from repro.gpu.reconfig import (
    CREATE_COST_S,
    DESTROY_COST_S,
    PROCESS_LAUNCH_COST_S,
    ReconfigurationCost,
    ShadowBudget,
    price_plan,
)


def spec(gpu, size, start, owner, procs=1):
    return InstanceSpec(gpu_id=gpu, size=size, start=start, owner=owner,
                        num_processes=procs)


class TestPricePlan:
    def test_noop_costs_nothing(self):
        cost = price_plan(ReconfigurationPlan())
        assert cost.total_work_s == 0.0
        assert cost.max_downtime_s == 0.0
        assert cost.shadow_gpus == 0
        assert cost.disrupted_services == ()

    def test_create_cost_includes_processes(self):
        plan = ReconfigurationPlan(create=[spec(0, 2, 0, "a", procs=3)])
        cost = price_plan(plan)
        assert cost.total_work_s == pytest.approx(
            CREATE_COST_S + 3 * PROCESS_LAUNCH_COST_S
        )
        assert cost.downtime_s["a"] == cost.total_work_s

    def test_destroy_cost(self):
        plan = ReconfigurationPlan(destroy=[(0, (0, 2, "a"))])
        assert price_plan(plan).total_work_s == pytest.approx(DESTROY_COST_S)

    def test_unchanged_services_have_zero_downtime(self):
        plan = ReconfigurationPlan(
            create=[spec(0, 2, 0, "a")],
            unchanged=[spec(1, 3, 4, "b")],
        )
        cost = price_plan(plan)
        assert cost.downtime_s["b"] == 0.0
        assert cost.disrupted_services == ("a",)

    def test_shadow_gpus_round_up(self):
        plan = ReconfigurationPlan(
            create=[spec(0, 7, 0, "a"), spec(1, 1, 0, "b")]
        )
        assert price_plan(plan).shadow_gpus == 2  # 8 GPCs -> 2 GPUs

    def test_end_to_end_with_cluster(self):
        cluster = Cluster()
        cluster.apply_specs([spec(0, 4, 0, "a"), spec(0, 3, 4, "b")])
        plan = cluster.plan_reconfiguration(
            [spec(0, 2, 0, "a"), spec(0, 3, 4, "b")]
        )
        cost = price_plan(plan)
        assert cost.downtime_s["a"] > 0
        assert cost.downtime_s["b"] == 0.0


class TestShadowBudget:
    def test_admit_within_budget(self):
        budget = ShadowBudget(spare_gpus=2)
        plan = ReconfigurationPlan(create=[spec(0, 7, 0, "a")])
        assert budget.admit(0.0, price_plan(plan))
        assert budget.peak_used == 1

    def test_reject_over_budget(self):
        budget = ShadowBudget(spare_gpus=1)
        plan = ReconfigurationPlan(
            create=[spec(0, 7, 0, "a"), spec(1, 7, 0, "b")]
        )
        assert not budget.admit(0.0, price_plan(plan))
        assert budget.peak_used == 0


class TestCombine:
    def test_combine_sums_work_and_downtime_maxes_shadow(self):
        a = ReconfigurationCost(
            total_work_s=1.0, downtime_s={"x": 1.0, "y": 0.5}, shadow_gpus=2
        )
        b = ReconfigurationCost(
            total_work_s=2.0, downtime_s={"y": 0.25, "z": 3.0}, shadow_gpus=1
        )
        combined = ReconfigurationCost.combine([a, b])
        assert combined.total_work_s == pytest.approx(3.0)
        assert combined.downtime_s == {"x": 1.0, "y": 0.75, "z": 3.0}
        assert combined.shadow_gpus == 2

    def test_combine_key_order_is_sorted_not_hash_order(self):
        # Regression (repro-lint D003): the combined downtime dict used to
        # be keyed over a raw set comprehension, so its insertion order --
        # and anything that later iterates or serializes it -- followed
        # PYTHONHASHSEED.  The union must come out sorted regardless of
        # the order the per-swap costs mention services in.
        a = ReconfigurationCost(
            total_work_s=0.0,
            downtime_s={f"svc-{i}": 1.0 for i in (9, 3, 7)},
            shadow_gpus=0,
        )
        b = ReconfigurationCost(
            total_work_s=0.0,
            downtime_s={f"svc-{i}": 1.0 for i in (1, 8, 3)},
            shadow_gpus=0,
        )
        for costs in ([a, b], [b, a]):
            combined = ReconfigurationCost.combine(costs)
            assert list(combined.downtime_s) == sorted(combined.downtime_s)
