"""Unit tests for DCGM-style SM-activity accounting (Eq. 3 semantics)."""

import pytest

from repro.gpu.telemetry import ActivitySample, SMActivityTracker


class TestActivitySample:
    def test_full_activity(self):
        # M blocks for the whole interval -> 1.0 (the paper's example).
        s = ActivitySample("k", sm_count=98, busy_sm_time=98.0, window=1.0)
        assert s.activity == pytest.approx(1.0)

    def test_fifth_of_blocks(self):
        # M/5 blocks throughout -> 0.2.
        s = ActivitySample("k", sm_count=98, busy_sm_time=98.0 / 5, window=1.0)
        assert s.activity == pytest.approx(0.2)

    def test_fifth_of_time(self):
        # all M blocks but one fifth of the time -> 0.2.
        s = ActivitySample("k", sm_count=98, busy_sm_time=0.2 * 98, window=1.0)
        assert s.activity == pytest.approx(0.2)

    def test_clamped_at_one(self):
        s = ActivitySample("k", sm_count=10, busy_sm_time=20.0, window=1.0)
        assert s.activity == 1.0

    def test_zero_window(self):
        assert ActivitySample("k", 10, 5.0, 0.0).activity == 0.0


class TestTracker:
    def test_register_required(self):
        t = SMActivityTracker()
        with pytest.raises(KeyError):
            t.record_busy("missing", 1.0)

    def test_register_positive_sms(self):
        with pytest.raises(ValueError):
            SMActivityTracker().register("k", 0)

    def test_accumulation(self):
        t = SMActivityTracker()
        t.register("k", 14)
        t.record_busy("k", 0.25)
        t.record_busy("k", 0.25)
        assert t.sample("k", 1.0).activity == pytest.approx(0.5)

    def test_partial_occupancy(self):
        t = SMActivityTracker()
        t.register("k", 14)
        t.record_busy("k", 1.0, active_fraction=0.5)
        assert t.sample("k", 1.0).activity == pytest.approx(0.5)

    def test_invalid_inputs(self):
        t = SMActivityTracker()
        t.register("k", 14)
        with pytest.raises(ValueError):
            t.record_busy("k", -1.0)
        with pytest.raises(ValueError):
            t.record_busy("k", 1.0, active_fraction=1.5)

    def test_reset(self):
        t = SMActivityTracker()
        t.register("k", 14)
        t.record_busy("k", 1.0)
        t.reset(now=5.0)
        assert t.window_start == 5.0
        assert t.sample("k", 6.0).activity == 0.0

    def test_samples_sorted(self):
        t = SMActivityTracker()
        t.register("b", 14)
        t.register("a", 14)
        keys = [s.segment_key for s in t.samples(1.0)]
        assert keys == ["a", "b"]
