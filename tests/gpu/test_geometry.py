"""Tests for the PartitionGeometry contract, registry, and generic layout."""

import pytest

from repro.gpu.amd import MI300X_GEOMETRY
from repro.gpu.generations import geometry_for_generation
from repro.gpu.geometry import (
    PartitionLayout,
    available_geometries,
    default_geometry,
    get_geometry,
)
from repro.gpu.gpu import GPU, GPUError
from repro.gpu.mig import MEMORY_GB, MIG_GEOMETRY, PlacedInstance


class TestRegistry:
    def test_builtins_registered(self):
        assert {"mig", "mi300x"} <= set(available_geometries())

    def test_aliases(self):
        assert get_geometry("a100") is MIG_GEOMETRY
        assert get_geometry("nvidia") is MIG_GEOMETRY
        assert get_geometry("AMD") is MI300X_GEOMETRY
        assert get_geometry("MI300X") is MI300X_GEOMETRY

    def test_default_is_mig(self):
        assert default_geometry() is MIG_GEOMETRY

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="known:"):
            get_geometry("tpu-v5")


class TestMigGeometryMatchesTables:
    """MIG_GEOMETRY is the single source of truth behind repro.gpu.mig."""

    def test_memory_map(self):
        for size, gb in MEMORY_GB.items():
            assert MIG_GEOMETRY.instance_memory_gb(size) == gb

    def test_slot_rules(self):
        assert MIG_GEOMETRY.legal_starts(2, extended=True) == (0, 2, 4, 5)
        assert MIG_GEOMETRY.legal_starts(2, extended=False) == (0, 2, 4)
        assert MIG_GEOMETRY.occupied_mask(3, 0) == 0b1111  # blocks slice 3

    def test_compute_accounting(self):
        assert MIG_GEOMETRY.total_sms == 98
        assert MIG_GEOMETRY.gpc_equivalent(7) == 7.0  # the reference unit

    def test_free_mixing(self):
        assert MIG_GEOMETRY.can_coexist((4, 2), 1)


class TestPlacedPartition:
    def test_validates_against_geometry(self):
        with pytest.raises(ValueError):
            MI300X_GEOMETRY.place(3, 0)  # no size-3 XCD mode
        with pytest.raises(ValueError):
            MI300X_GEOMETRY.place(4, 2)  # 4-XCD partitions start at 0/4

    def test_equality_is_geometry_aware(self):
        mig = MIG_GEOMETRY.place(4, 0)
        amd = MI300X_GEOMETRY.place(4, 0)
        assert mig != amd
        assert mig == PlacedInstance(4, 0)  # MIG subclass interoperates
        assert hash(mig) == hash(PlacedInstance(4, 0))

    def test_cross_geometry_layouts_reject_foreign_instances(self):
        layout = PartitionLayout(MIG_GEOMETRY)
        with pytest.raises(ValueError):
            layout.add(MI300X_GEOMETRY.place(4, 0))

    def test_memory_property(self):
        assert MI300X_GEOMETRY.place(1, 0).memory_gb == 24.0
        assert PlacedInstance(1, 0).memory_gb == 10


class TestGenerationGeometries:
    def test_default_generation_is_the_mig_singleton(self):
        assert geometry_for_generation("a100-80gb") is MIG_GEOMETRY

    def test_h200_memory_map_moves_oom_boundaries(self):
        h200 = geometry_for_generation("h200-141gb")
        assert h200.instance_memory_gb(7) == 141
        assert h200.instance_memory_gb(1) == pytest.approx(141 / 8)
        # placement rules are untouched across NVIDIA generations
        assert h200.legal_starts(3) == MIG_GEOMETRY.legal_starts(3)
        assert h200.occupied_mask(3, 0) == MIG_GEOMETRY.occupied_mask(3, 0)


class TestGeometryAwareGPU:
    def test_mi300x_gpu_lifecycle(self):
        gpu = GPU(0, geometry=MI300X_GEOMETRY)
        a = gpu.create_instance(4, 0, owner="svc-a")
        assert a.sm_count == 4 * 38
        assert gpu.free_gpcs == 4
        # device-wide mode: a QPX instance cannot join a DPX device
        with pytest.raises(GPUError):
            gpu.create_instance(2, 4, owner="svc-b")
        gpu.create_instance(4, 4, owner="svc-b")
        assert gpu.used_gpcs == 8
        gpu.destroy_all()
        assert gpu.is_empty

    def test_default_gpu_still_mig(self):
        gpu = GPU(0)
        assert gpu.geometry is MIG_GEOMETRY
        gpu.create_instance(3, 0)
        assert gpu.free_gpcs == 3  # slice 3 blocked
