"""Unit tests for GPC slice bitmask arithmetic."""

import pytest

from repro.gpu.slices import (
    FULL_MASK,
    NUM_SLICES,
    free_slices,
    is_subset,
    iter_runs,
    largest_free_run,
    mask_of,
    overlaps,
    popcount,
    range_mask,
    slice_indices,
)


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_single(self):
        assert mask_of([0]) == 0b1
        assert mask_of([6]) == 0b1000000

    def test_multiple(self):
        assert mask_of([0, 2, 3]) == 0b1101

    def test_duplicates_collapse(self):
        assert mask_of([1, 1, 1]) == 0b10

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            mask_of([7])
        with pytest.raises(ValueError):
            mask_of([-1])


class TestRangeMask:
    def test_full(self):
        assert range_mask(0, 7) == FULL_MASK

    def test_middle(self):
        assert range_mask(2, 3) == 0b0011100

    def test_zero_length(self):
        assert range_mask(3, 0) == 0

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            range_mask(5, 3)
        with pytest.raises(ValueError):
            range_mask(-1, 2)


class TestQueries:
    def test_slice_indices_roundtrip(self):
        for mask in (0, 0b1, 0b1010101, FULL_MASK):
            assert mask_of(slice_indices(mask)) == mask

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(FULL_MASK) == NUM_SLICES
        assert popcount(0b101) == 2

    def test_overlaps(self):
        assert overlaps(0b110, 0b011)
        assert not overlaps(0b100, 0b011)

    def test_is_subset(self):
        assert is_subset(0b101, 0b111)
        assert not is_subset(0b101, 0b100)
        assert is_subset(0, 0)

    def test_free_slices(self):
        assert free_slices(FULL_MASK) == ()
        assert free_slices(0) == tuple(range(NUM_SLICES))
        assert free_slices(0b0001111) == (4, 5, 6)


class TestRuns:
    def test_iter_runs_empty(self):
        assert list(iter_runs(0)) == []

    def test_iter_runs_full(self):
        assert list(iter_runs(FULL_MASK)) == [(0, 7)]

    def test_iter_runs_split(self):
        assert list(iter_runs(0b1100110)) == [(1, 2), (5, 2)]

    def test_largest_free_run_empty_gpu(self):
        assert largest_free_run(0) == 7

    def test_largest_free_run_blocked_middle(self):
        # slice 3 occupied splits the GPU into runs of 3.
        assert largest_free_run(0b0001000) == 3

    def test_largest_free_run_full(self):
        assert largest_free_run(FULL_MASK) == 0
