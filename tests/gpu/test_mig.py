"""Unit tests for MIG profiles, placement rules, and Figure 1."""

import pytest

from repro.gpu.mig import (
    INSTANCE_SIZES,
    MEMORY_GB,
    MigLayout,
    PROFILES,
    PlacedInstance,
    enumerate_configurations,
    legal_starts,
    occupied_mask,
)
from repro.gpu.slices import popcount, slice_indices


class TestProfiles:
    def test_sizes(self):
        assert INSTANCE_SIZES == (1, 2, 3, 4, 7)

    def test_no_5_or_6(self):
        # SII-B: "due to hardware limitations, configurations of 5 or 6
        # GPCs are not possible".
        for bad in (0, 5, 6, 8):
            with pytest.raises(ValueError):
                legal_starts(bad)

    def test_memory_map_matches_paper(self):
        # SII-B: "instances with 10, 20, 40, 40, 80GB of GPU memory".
        assert [MEMORY_GB[s] for s in INSTANCE_SIZES] == [10, 20, 40, 40, 80]

    def test_profile_names(self):
        assert PROFILES[1].name == "1g.10gb"
        assert PROFILES[7].name == "7g.80gb"

    def test_profile_lookup_consistent(self):
        for size, profile in PROFILES.items():
            assert profile.size == size
            assert profile.memory_gb == MEMORY_GB[size]


class TestLegalStarts:
    def test_size7_only_slot0(self):
        assert legal_starts(7) == (0,)

    def test_size4_only_slot0(self):
        assert legal_starts(4) == (0,)

    def test_size3_slots(self):
        assert legal_starts(3) == (0, 4)

    def test_size2_extended_includes_slot5(self):
        # SIII-E1: "size 2 segments can be placed in slots 0, 2, 4, or 5".
        assert legal_starts(2, extended=True) == (0, 2, 4, 5)

    def test_size2_canonical_excludes_slot5(self):
        assert legal_starts(2, extended=False) == (0, 2, 4)

    def test_size1_everywhere(self):
        assert legal_starts(1) == tuple(range(7))


class TestOccupiedMask:
    def test_size3_at_slot0_blocks_slice3(self):
        # SIII-E1: "placing a size 3 segment in slot 0 prevents the
        # allocation of a size 1 segment in slot 3".
        assert slice_indices(occupied_mask(3, 0)) == (0, 1, 2, 3)

    def test_size3_at_slot4_blocks_nothing_extra(self):
        assert slice_indices(occupied_mask(3, 4)) == (4, 5, 6)

    def test_other_sizes_exact(self):
        assert popcount(occupied_mask(7, 0)) == 7
        assert popcount(occupied_mask(4, 0)) == 4
        assert slice_indices(occupied_mask(2, 5)) == (5, 6)
        assert slice_indices(occupied_mask(1, 3)) == (3,)


class TestPlacedInstance:
    def test_illegal_start_rejected(self):
        with pytest.raises(ValueError):
            PlacedInstance(4, 2)
        with pytest.raises(ValueError):
            PlacedInstance(7, 1)
        with pytest.raises(ValueError):
            PlacedInstance(3, 2)

    def test_properties(self):
        inst = PlacedInstance(2, 2)
        assert inst.slices == (2, 3)
        assert inst.profile.memory_gb == 20


class TestMigLayout:
    def test_empty(self):
        layout = MigLayout()
        assert layout.used_gpcs == 0
        assert len(layout) == 0

    def test_add_overlap_rejected(self):
        layout = MigLayout([PlacedInstance(4, 0)])
        with pytest.raises(ValueError):
            layout.add(PlacedInstance(2, 2))

    def test_three_at_zero_blocks_one_at_three(self):
        layout = MigLayout([PlacedInstance(3, 0)])
        assert not layout.can_add(1, 3)
        assert layout.can_add(3, 4)

    def test_used_gpcs_excludes_blocked(self):
        layout = MigLayout([PlacedInstance(3, 0)])
        assert layout.used_gpcs == 3  # slice 3 blocked but not compute

    def test_remove_restores(self):
        layout = MigLayout()
        inst = PlacedInstance(4, 0)
        layout.add(inst)
        assert not layout.can_add(4, 0)
        layout.remove(inst)
        assert layout.can_add(4, 0)
        assert len(layout) == 0

    def test_sizes_descending(self):
        layout = MigLayout(
            [PlacedInstance(1, 0), PlacedInstance(3, 4), PlacedInstance(2, 2)]
        )
        assert layout.sizes() == (3, 2, 1)

    def test_full_gpu_is_maximal(self):
        layout = MigLayout([PlacedInstance(7, 0)])
        assert layout.is_maximal()

    def test_signature_is_position_sensitive(self):
        a = MigLayout([PlacedInstance(2, 0), PlacedInstance(1, 2)])
        b = MigLayout([PlacedInstance(1, 0), PlacedInstance(2, 2)])
        assert a.signature() != b.signature()


class TestFigure1:
    def test_exactly_19_configurations(self):
        assert len(enumerate_configurations()) == 19

    def test_first_is_full_gpu(self):
        assert enumerate_configurations()[0].sizes() == (7,)

    def test_last_is_seven_ones(self):
        assert enumerate_configurations()[-1].sizes() == (1,) * 7

    def test_known_configs_present(self):
        sizes = {c.sizes() for c in enumerate_configurations()}
        # Combinations named in SII-B: "1-1-1-1-1-1-1, 4-3, 4-2-1, and 4-1-1-1".
        for expected in [(7,), (4, 3), (4, 2, 1), (4, 1, 1, 1), (1,) * 7, (3, 3)]:
            assert expected in sizes

    def test_all_maximal_and_unique(self):
        configs = enumerate_configurations()
        sigs = {c.signature() for c in configs}
        assert len(sigs) == len(configs)
        for c in configs:
            assert c.is_maximal()

    def test_no_config_exceeds_seven_gpcs(self):
        for c in enumerate_configurations():
            assert c.used_gpcs <= 7
            assert len(c) <= 7  # at most seven instances (SII-B)
