"""Unit tests for GPU generations (Discussion section)."""

import pytest

from repro.gpu.generations import (
    DEFAULT_GENERATION,
    GENERATIONS,
    GPUGeneration,
    get_generation,
)
from repro.gpu.mig import MEMORY_GB
from repro.models.perf import PerfModel
from repro.models.zoo import get_model


class TestCatalogue:
    def test_default_matches_evaluation_hardware(self):
        gen = get_generation(DEFAULT_GENERATION)
        assert gen.architecture == "ampere"
        for size, gb in MEMORY_GB.items():
            assert gen.instance_memory_gb(size) == gb

    def test_named_generations_present(self):
        for name in ("a100-40gb", "h100-80gb", "h200-141gb", "b200-192gb"):
            assert name in GENERATIONS

    def test_hopper_memory_exceeds_ampere(self):
        h200 = get_generation("h200-141gb")
        a100 = get_generation("a100-80gb")
        for size in (1, 2, 3, 4, 7):
            assert h200.instance_memory_gb(size) > a100.instance_memory_gb(size)

    def test_unknown_generation(self):
        with pytest.raises(KeyError):
            get_generation("mi300x")

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUGeneration("x", "a", 80, {1: 10.0})
        with pytest.raises(ValueError):
            GPUGeneration(
                "x", "a", 80, {1: 10, 2: 20, 3: 40, 4: 40, 7: 79}
            )

    def test_feasible_sizes(self):
        a100 = get_generation("a100-80gb")
        assert a100.feasible_sizes(9.0) == (1, 2, 3, 4, 7)
        assert a100.feasible_sizes(41.0) == (7,)
        assert a100.feasible_sizes(100.0) == ()


class TestPerfModelIntegration:
    def test_memory_map_moves_oom_boundary(self):
        bert = get_model("bert-large")
        small = PerfModel(bert, generation=get_generation("a100-40gb"))
        big = PerfModel(bert, generation=get_generation("h200-141gb"))
        # three BERT processes at batch 32 OOM a 5 GB slice but fit 17.6 GB
        assert not small.fits(1, 32, 3)
        assert big.fits(1, 32, 3)

    def test_compute_is_generation_invariant(self):
        spec = get_model("resnet-50")
        default = PerfModel(spec)
        hopper = PerfModel(spec, generation=get_generation("h100-80gb"))
        assert default.latency_ms(2, 16, 2) == hopper.latency_ms(2, 16, 2)
        assert default.throughput(2, 16, 2) == hopper.throughput(2, 16, 2)
