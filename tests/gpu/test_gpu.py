"""Unit tests for the single-GPU instance lifecycle."""

import pytest

from repro.gpu.gpu import GPU, GPUError, SMS_PER_GPC, SMS_PER_GPU


class TestCreation:
    def test_create_valid(self):
        gpu = GPU(0)
        inst = gpu.create_instance(4, 0, owner="a")
        assert inst.size == 4
        assert inst.owner == "a"
        assert gpu.used_gpcs == 4

    def test_sm_accounting(self):
        gpu = GPU(0)
        inst = gpu.create_instance(3, 4)
        assert inst.sm_count == 3 * SMS_PER_GPC
        assert SMS_PER_GPU == 7 * SMS_PER_GPC

    def test_create_invalid_size(self):
        with pytest.raises(GPUError):
            GPU(0).create_instance(5, 0)

    def test_create_illegal_start(self):
        with pytest.raises(GPUError):
            GPU(0).create_instance(4, 1)

    def test_create_overlap(self):
        gpu = GPU(0)
        gpu.create_instance(4, 0)
        with pytest.raises(GPUError):
            gpu.create_instance(7, 0)

    def test_full_partitioning(self):
        gpu = GPU(0)
        for slot in range(7):
            gpu.create_instance(1, slot)
        assert gpu.used_gpcs == 7
        assert gpu.free_gpcs == 0
        assert not gpu.can_place(1)


class TestDestroy:
    def test_destroy_frees_slices(self):
        gpu = GPU(0)
        inst = gpu.create_instance(7, 0)
        gpu.destroy_instance(inst)
        assert gpu.is_empty
        assert gpu.can_place(7, 0)

    def test_destroy_foreign_instance_raises(self):
        gpu_a, gpu_b = GPU(0), GPU(1)
        inst = gpu_a.create_instance(1, 0)
        with pytest.raises(GPUError):
            gpu_b.destroy_instance(inst)

    def test_destroy_all(self):
        gpu = GPU(0)
        gpu.create_instance(3, 4)
        gpu.create_instance(2, 0)
        gpu.destroy_all()
        assert gpu.is_empty

    def test_destroy_terminates_mps(self):
        gpu = GPU(0)
        inst = gpu.create_instance(2, 0)
        inst.mps.launch("svc")
        gpu.destroy_instance(inst)
        assert inst.mps.num_processes == 0


class TestQueries:
    def test_feasible_starts_for_three_after_blocking(self):
        gpu = GPU(0)
        gpu.create_instance(3, 0)  # blocks slice 3
        assert gpu.feasible_starts(3) == (4,)
        assert gpu.feasible_starts(1) == (4, 5, 6)

    def test_largest_free_run(self):
        gpu = GPU(0)
        gpu.create_instance(1, 3)
        assert gpu.largest_free_run() == 3

    def test_instances_of(self):
        gpu = GPU(0)
        gpu.create_instance(1, 0, owner="x")
        gpu.create_instance(1, 1, owner="y")
        gpu.create_instance(1, 2, owner="x")
        assert len(gpu.instances_of("x")) == 2

    def test_snapshot_sorted_and_hashable(self):
        gpu = GPU(0)
        gpu.create_instance(3, 4, owner="b")
        gpu.create_instance(2, 0, owner="a")
        snap = gpu.snapshot()
        assert snap == ((0, 2, "a"), (4, 3, "b"))
        hash(snap)

    def test_can_place_any_start(self):
        gpu = GPU(0)
        gpu.create_instance(4, 0)
        assert gpu.can_place(3)  # at slot 4
        assert not gpu.can_place(4)
        assert not gpu.can_place(7)
