"""The intake queue: merge_timeline ordering over a live stream."""

import asyncio
import random

import pytest

from repro.ops.events import (
    GpuFailure,
    RateEpoch,
    ServiceDeparture,
    merge_timeline,
)
from repro.serve import IntakeQueue


def events_for_ordering():
    """Same-instant ties across types and ids, plus distinct instants."""
    return [
        RateEpoch(time_s=20.0, service_id="b", rate=1.0),
        RateEpoch(time_s=10.0, service_id="z", rate=1.0),
        ServiceDeparture(time_s=10.0, service_id="a"),
        GpuFailure(time_s=10.0, event_id="f0", draw=0.1),
        RateEpoch(time_s=10.0, service_id="a", rate=2.0),
    ]


class TestOrdering:
    def test_pop_due_matches_merge_timeline(self):
        """Popping a live stream yields exactly the offline batch order —
        the property the virtual-clock replay identity rests on."""
        events = events_for_ordering()
        rng = random.Random(7)
        for _ in range(10):
            rng.shuffle(events)
            q = IntakeQueue()
            for e in events:
                q.push(e)
            popped = [item.event for item in q.pop_due(10.0)]
            assert popped == list(merge_timeline(
                e for e in events if e.time_s <= 10.0
            ))

    def test_pop_due_boundary_is_inclusive(self):
        q = IntakeQueue()
        q.push(RateEpoch(time_s=5.0, service_id="a", rate=1.0))
        q.push(RateEpoch(time_s=5.1, service_id="a", rate=2.0))
        due = q.pop_due(5.0)
        assert [i.event.time_s for i in due] == [5.0]
        assert q.next_time() == 5.1

    def test_next_time_and_len(self):
        q = IntakeQueue()
        assert q.next_time() is None
        assert len(q) == 0
        q.push(RateEpoch(time_s=9.0, service_id="a", rate=1.0))
        q.push(RateEpoch(time_s=3.0, service_id="a", rate=1.0))
        assert q.next_time() == 3.0
        assert len(q) == 2
        assert q.accepted == 2

    def test_enqueued_at_travels_with_the_event(self):
        q = IntakeQueue()
        q.push(RateEpoch(time_s=1.0, service_id="a", rate=1.0),
               enqueued_at=12.5)
        item = q.pop_due(1.0)[0]
        assert item.enqueued_at == 12.5


class TestCloseAndWait:
    def test_push_after_close_rejected(self):
        q = IntakeQueue()
        q.close()
        assert q.closed
        with pytest.raises(RuntimeError, match="closed"):
            q.push(RateEpoch(time_s=1.0, service_id="a", rate=1.0))

    def test_wait_arrival_wakes_on_push(self):
        async def scenario():
            q = IntakeQueue()

            async def pusher():
                await asyncio.sleep(0)
                q.push(RateEpoch(time_s=1.0, service_id="a", rate=1.0))

            task = asyncio.ensure_future(pusher())
            await asyncio.wait_for(q.wait_arrival(), timeout=1.0)
            await task
            return q.next_time()

        assert asyncio.run(scenario()) == 1.0

    def test_wait_arrival_wakes_on_close(self):
        async def scenario():
            q = IntakeQueue()

            async def closer():
                await asyncio.sleep(0)
                q.close()

            task = asyncio.ensure_future(closer())
            await asyncio.wait_for(q.wait_arrival(), timeout=1.0)
            await task
            return q.closed

        assert asyncio.run(scenario())

    def test_push_before_wait_is_not_missed(self):
        """An arrival between waits stays latched until consumed."""
        async def scenario():
            q = IntakeQueue()
            q.push(RateEpoch(time_s=1.0, service_id="a", rate=1.0))
            await asyncio.wait_for(q.wait_arrival(), timeout=1.0)

        asyncio.run(scenario())

    def test_wait_after_close_never_blocks(self):
        async def scenario():
            q = IntakeQueue()
            q.close()
            await asyncio.wait_for(q.wait_arrival(), timeout=1.0)
            await asyncio.wait_for(q.wait_arrival(), timeout=1.0)

        asyncio.run(scenario())
