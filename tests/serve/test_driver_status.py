"""Scripted drivers (record + replay) and the HTTP status surface."""

import asyncio
import json

import pytest

from repro.core.service import Service
from repro.ops import FleetController
from repro.ops.events import RateEpoch, ServiceArrival, merge_timeline
from repro.serve import (
    ScriptedDriver,
    ServeGateway,
    StatusServer,
    VirtualClock,
    decode_event,
    encode_event,
    replay_identity_checked,
    scripted_source,
    timeline_source,
)


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
    ]


def timeline():
    return merge_timeline(
        [RateEpoch(time_s=30.0, service_id="a", rate=6000.0)],
        [ServiceArrival(time_s=50.0, service_id="n", model="vgg-16",
                        request_rate=400.0, slo_latency_ms=350.0)],
        [RateEpoch(time_s=10.0, service_id="b", rate=1000.0)],
    )


def drain(source):
    async def go():
        return [e async for e in source]

    return asyncio.run(go())


class TestScriptedDriver:
    def test_events_sorted_on_construction(self):
        driver = ScriptedDriver(reversed(timeline()))
        assert [e.time_s for e in driver.events] == [10.0, 30.0, 50.0]

    def test_scripted_source_paces_by_clock(self):
        clock = VirtualClock()
        emitted = drain(scripted_source(timeline(), clock))
        assert [e.time_s for e in emitted] == [10.0, 30.0, 50.0]
        assert clock.now() == 50.0  # slept up to the last stamp

    def test_driver_records_what_it_sent(self):
        driver = ScriptedDriver(timeline())
        clock = VirtualClock()
        emitted = drain(driver.source(clock))
        assert driver.sent == emitted == list(driver.events)

    def test_recorded_jsonl_round_trips(self):
        driver = ScriptedDriver(timeline())
        drain(driver.source(VirtualClock()))
        decoded = [decode_event(line) for line in driver.recorded_jsonl()]
        assert decoded == driver.sent

    def test_recorded_session_replays_identically(self, profiles, services):
        """The full loop: drive a session, record it, and verify the
        recording against the offline controller."""
        driver = ScriptedDriver(timeline())
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock(),
            measure_s=0.1,
        )
        asyncio.run(gateway.run(driver.source(gateway.clock)))
        recorded = [decode_event(line) for line in driver.recorded_jsonl()]
        replay_identity_checked(
            services, recorded, 100.0, measure_s=0.1, profiles=profiles
        )


async def fetch(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestStatusServer:
    def run_gateway(self, profiles, services):
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock(),
            measure_s=0.1,
        )
        asyncio.run(gateway.run(timeline_source(timeline())))
        return gateway

    def test_report_and_health_endpoints(self, profiles, services):
        gateway = self.run_gateway(profiles, services)

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                root = await fetch(server.port, "/")
                report = await fetch(server.port, "/report")
                health = await fetch(server.port, "/health")
                missing = await fetch(server.port, "/nope")
                bad_method = await fetch(server.port, "/report", "POST")
            finally:
                await server.stop()
            return root, report, health, missing, bad_method

        root, report, health, missing, bad_method = asyncio.run(scenario())
        assert root[0] == report[0] == health[0] == 200
        snap = json.loads(report[1])
        assert snap == gateway.snapshot()
        assert snap["report"]["intervals"]
        doc = json.loads(health[1])
        assert doc["steps"] == gateway.health.steps
        assert missing[0] == 404
        assert bad_method[0] == 405

    def test_port_allocated_and_double_start_rejected(
        self, profiles, services
    ):
        gateway = self.run_gateway(profiles, services)

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                assert server.port > 0
                with pytest.raises(RuntimeError):
                    await server.start()
            finally:
                await server.stop()

        asyncio.run(scenario())


async def post(port, path, body, content_length=None):
    payload = body.encode()
    length = len(payload) if content_length is None else content_length
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {length}\r\n\r\n".encode()
    )
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body)


class TestPostEvents:
    """``POST /events``: live event submission over the status port."""

    def live_session(self, profiles, services, **gateway_kwargs):
        """A gateway mid-run: the source holds the intake open until
        released, so requests hit a *live* control loop."""
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock(),
            measure_s=0.1, **gateway_kwargs,
        )
        gate = asyncio.Event()

        async def source():
            for event in timeline():
                yield event
            await gate.wait()

        return gateway, source, gate

    def test_posted_events_enter_the_session(self, profiles, services):
        async def scenario():
            gateway, source, gate = self.live_session(profiles, services)
            server = StatusServer(gateway)
            await server.start()
            run = asyncio.create_task(gateway.run(source()))
            try:
                lines = "\n".join([
                    encode_event(
                        RateEpoch(time_s=60.0, service_id="a", rate=3000.0)
                    ),
                    encode_event(  # beyond the 100 s horizon: dropped
                        RateEpoch(time_s=500.0, service_id="a", rate=1.0)
                    ),
                ])
                status, doc = await post(server.port, "/events", lines)
            finally:
                gate.set()
                await run
                await server.stop()
            return status, doc, gateway

        status, doc, gateway = asyncio.run(scenario())
        assert status == 202
        assert doc == {"accepted": 1, "dropped": 1}
        assert gateway.health.injected_events == 1
        assert gateway.health.dropped_beyond_horizon == 1
        applied = {
            kind
            for r in gateway.report.intervals
            for kind in r.events
        }
        assert "RateEpoch" in applied

    def test_malformed_line_rejects_whole_batch(self, profiles, services):
        async def scenario():
            gateway, source, gate = self.live_session(profiles, services)
            server = StatusServer(gateway)
            await server.start()
            run = asyncio.create_task(gateway.run(source()))
            try:
                good = encode_event(
                    RateEpoch(time_s=60.0, service_id="a", rate=3000.0)
                )
                status, doc = await post(
                    server.port, "/events", good + "\nnot json\n"
                )
            finally:
                gate.set()
                await run
                await server.stop()
            return status, doc, gateway

        status, doc, gateway = asyncio.run(scenario())
        assert status == 400
        assert "line 1" in doc["error"]
        assert gateway.health.injected_events == 0  # all-or-nothing
        assert gateway.health.rejected_events == 1

    def test_empty_body_rejected(self, profiles, services):
        async def scenario():
            gateway, source, gate = self.live_session(profiles, services)
            server = StatusServer(gateway)
            await server.start()
            run = asyncio.create_task(gateway.run(source()))
            try:
                return await post(server.port, "/events", "")
            finally:
                gate.set()
                await run
                await server.stop()

        status, doc = asyncio.run(scenario())
        assert status == 400
        assert "empty" in doc["error"]

    def test_closed_intake_conflicts(self, profiles, services):
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock(),
            measure_s=0.1,
        )
        asyncio.run(gateway.run(timeline_source(timeline())))

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                line = encode_event(
                    RateEpoch(time_s=60.0, service_id="a", rate=1.0)
                )
                return await post(server.port, "/events", line)
            finally:
                await server.stop()

        status, doc = asyncio.run(scenario())
        assert status == 409
        assert gateway.health.rejected_events == 1

    def test_get_on_events_is_405(self, profiles, services):
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock(),
            measure_s=0.1,
        )
        asyncio.run(gateway.run(timeline_source(timeline())))

        async def scenario():
            server = StatusServer(gateway)
            await server.start()
            try:
                return await fetch(server.port, "/events")
            finally:
                await server.stop()

        status, _ = asyncio.run(scenario())
        assert status == 405

    def test_posted_events_are_journaled(
        self, profiles, services, tmp_path
    ):
        from repro.serve import Journal, read_journal

        async def scenario():
            gateway, source, gate = self.live_session(
                profiles, services, journal=Journal(tmp_path)
            )
            server = StatusServer(gateway)
            await server.start()
            run = asyncio.create_task(gateway.run(source()))
            try:
                event = RateEpoch(time_s=60.0, service_id="a", rate=3000.0)
                await post(server.port, "/events", encode_event(event))
            finally:
                gate.set()
                await run
                await server.stop()
            return event

        event = asyncio.run(scenario())
        assert event in read_journal(tmp_path).events
