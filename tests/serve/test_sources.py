"""The wire codec and event sources: exact round-trips, stable lines."""

import asyncio
import json

import pytest

from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    RateEpoch,
    ServiceArrival,
    ServiceDeparture,
    SloChange,
    SpotPreemptionWave,
)
from repro.serve import (
    EVENT_TYPES,
    decode_event,
    encode_event,
    event_from_doc,
    event_to_doc,
    jsonl_source,
    stream_source,
    timeline_source,
)

#: one representative of every wire-format event type
SAMPLES = [
    ServiceDeparture(time_s=10.0, service_id="svc1"),
    ServiceArrival(time_s=20.0, service_id="svc2", model="resnet-50",
                   request_rate=1200.0, slo_latency_ms=250.0),
    SloChange(time_s=30.0, service_id="svc1", slo_latency_ms=180.0),
    RateEpoch(time_s=40.0, service_id="svc2", rate=4500.0),
    GpuRecovery(time_s=50.0, ref="f0"),
    GpuRecovery(time_s=51.0, gpu_id=3),
    GpuFailure(time_s=60.0, event_id="f1", draw=0.25),
    SpotPreemptionWave(time_s=70.0, event_id="w0", fraction=0.1,
                       draw=0.5, restore_delay_s=600.0),
]


def collect(source):
    async def drain():
        return [e async for e in source]

    return asyncio.run(drain())


class TestCodec:
    def test_vocabulary_is_complete(self):
        assert set(EVENT_TYPES) == {
            "ServiceDeparture", "ServiceArrival", "SloChange", "RateEpoch",
            "GpuRecovery", "GpuFailure", "SpotPreemptionWave",
        }

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_doc_round_trip(self, event):
        assert event_from_doc(event_to_doc(event)) == event

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
    def test_line_round_trip(self, event):
        assert decode_event(encode_event(event)) == event

    def test_lines_are_canonical(self):
        """Sorted keys: a recorded session is diffable and byte-stable."""
        line = encode_event(SAMPLES[0])
        keys = list(json.loads(line))
        assert keys == sorted(keys)
        assert encode_event(SAMPLES[0]) == line  # deterministic

    def test_kind_discriminator_matches_class_name(self):
        doc = event_to_doc(RateEpoch(time_s=1.0, service_id="a", rate=2.0))
        assert doc["kind"] == "RateEpoch"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_doc({"kind": "Nope", "time_s": 1.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_doc({"time_s": 1.0})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            event_from_doc(
                {"kind": "RateEpoch", "time_s": 1.0, "service_id": "a",
                 "rate": 2.0, "bogus": True}
            )

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_event("[1, 2, 3]")

    def test_invalid_field_values_still_validate(self):
        """The dataclass __post_init__ contracts hold on decode too."""
        with pytest.raises(ValueError):
            decode_event(json.dumps(
                {"kind": "GpuFailure", "time_s": 1.0, "event_id": "f",
                 "draw": 2.0}  # draw must be in [0, 1)
            ))


class TestSources:
    def test_timeline_source_preserves_order(self):
        assert collect(timeline_source(SAMPLES)) == SAMPLES

    def test_jsonl_source_decodes_and_skips_blanks(self):
        lines = [encode_event(e) for e in SAMPLES]
        lines.insert(2, "")
        lines.insert(5, "   ")
        assert collect(jsonl_source(lines)) == SAMPLES

    def test_stream_source_reads_until_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            for e in SAMPLES:
                reader.feed_data((encode_event(e) + "\n").encode())
            reader.feed_data(b"\n")  # blank line is skipped
            reader.feed_eof()
            return [e async for e in stream_source(reader)]

        assert asyncio.run(scenario()) == SAMPLES
