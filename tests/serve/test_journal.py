"""The gateway write-ahead journal: durability without identity drift.

Every admitted event is journaled *before* it is pushed to intake, so
whatever survives a crash is a strict prefix of what the gateway acted
on — and replaying that prefix through the offline control plane is
bit-identical to the interrupted live session over the same events.
These tests pin the segment format, rotation and fsync accounting, and
the two corruption modes recovery distinguishes: a torn final line
(normal crash artifact, silently dropped) versus interior damage
(counted in ``skipped_lines``, never fatal).
"""

import pytest

from repro.ops.events import RateEpoch, ServiceDeparture, SloChange
from repro.resilience import corrupt_journal, truncate_journal
from repro.serve import (
    Journal,
    decode_event,
    encode_event,
    journal_segments,
    read_journal,
)
from repro.serve.journal import FSYNC_POLICIES, segment_name


def make_events(n):
    return [
        RateEpoch(time_s=float(i), service_id=f"svc{i % 7}", rate=100.0 + i)
        for i in range(n)
    ]


def write_all(dir_path, events, **kwargs):
    with Journal(dir_path, **kwargs) as journal:
        for event in events:
            journal.append(event)
        return journal.stats


class TestAppend:
    def test_round_trip(self, tmp_path):
        events = make_events(25)
        stats = write_all(tmp_path, events)
        assert stats.appends == 25
        recovery = read_journal(tmp_path)
        assert recovery.events == events
        assert recovery.lines == 25
        assert recovery.segments == 1
        assert recovery.skipped_lines == 0
        assert not recovery.truncated_tail

    def test_mixed_event_types_round_trip(self, tmp_path):
        events = [
            ServiceDeparture(time_s=1.0, service_id="a"),
            SloChange(time_s=2.0, service_id="b", slo_latency_ms=99.0),
            RateEpoch(time_s=3.0, service_id="a", rate=42.0),
        ]
        write_all(tmp_path, events)
        assert read_journal(tmp_path).events == events

    def test_lines_are_the_wire_format(self, tmp_path):
        """One encode_event() line per append — greppable, diffable."""
        events = make_events(3)
        write_all(tmp_path, events)
        (segment,) = journal_segments(tmp_path)
        lines = segment.read_text().splitlines()
        assert lines == [encode_event(e) for e in events]
        assert [decode_event(line) for line in lines] == events

    def test_empty_journal_recovers_empty(self, tmp_path):
        write_all(tmp_path, [])
        assert read_journal(tmp_path).events == []


class TestRotation:
    def test_rotation_splits_segments(self, tmp_path):
        stats = write_all(tmp_path, make_events(25), rotate_every=10)
        assert stats.rotations == 2
        assert stats.segments == 3
        names = [p.name for p in journal_segments(tmp_path)]
        assert names == [segment_name(0), segment_name(1), segment_name(2)]
        recovery = read_journal(tmp_path)
        assert recovery.events == make_events(25)
        assert recovery.segments == 3

    def test_reopen_continues_numbering(self, tmp_path):
        """A restarted gateway must never overwrite a prior segment."""
        write_all(tmp_path, make_events(5), rotate_every=3)
        write_all(tmp_path, make_events(5), rotate_every=3)
        names = [p.name for p in journal_segments(tmp_path)]
        assert names[0] == segment_name(0)
        assert names == sorted(set(names))  # no collisions
        assert read_journal(tmp_path).events == make_events(5) + make_events(5)


class TestFsync:
    @pytest.mark.parametrize("policy", FSYNC_POLICIES)
    def test_policies_all_persist(self, tmp_path, policy):
        events = make_events(10)
        write_all(tmp_path / policy, events, fsync=policy, fsync_every=4)
        assert read_journal(tmp_path / policy).events == events

    def test_always_syncs_every_append(self, tmp_path):
        stats = write_all(tmp_path, make_events(6), fsync="always")
        assert stats.fsyncs >= 6

    def test_interval_syncs_batched(self, tmp_path):
        stats = write_all(
            tmp_path, make_events(10), fsync="interval", fsync_every=4
        )
        # syncs at appends 4 and 8, plus the close() flush
        assert 0 < stats.fsyncs < 10

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Journal(tmp_path, fsync="sometimes")


class TestRecovery:
    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        events = make_events(8)
        write_all(tmp_path, events)
        truncate_journal(tmp_path, 7)
        recovery = read_journal(tmp_path)
        assert recovery.truncated_tail
        assert recovery.events == events[:-1]
        assert recovery.skipped_lines == 0

    def test_interior_corruption_is_counted(self, tmp_path):
        events = make_events(8)
        write_all(tmp_path, events)
        corrupt_journal(tmp_path, seed=1)
        recovery = read_journal(tmp_path)
        assert recovery.skipped_lines + int(recovery.truncated_tail) >= 1
        assert len(recovery.events) < len(events)
        # every event that did survive is one that was written
        assert all(e in events for e in recovery.events)

    def test_missing_directory_recovers_empty(self, tmp_path):
        """No journal yet (first boot) is not an error — just nothing."""
        recovery = read_journal(tmp_path / "never-created")
        assert recovery.events == []
        assert recovery.segments == 0
        assert not recovery.truncated_tail
