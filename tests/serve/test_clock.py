"""Scenario clocks: virtual determinism vs the scaled monotonic clock."""

import asyncio

import pytest

from repro.serve import MonotonicClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_and_is_virtual(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.is_virtual

    def test_custom_start(self):
        assert VirtualClock(start_s=42.0).now() == 42.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="before t=0"):
            VirtualClock(start_s=-1.0)

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        clock.advance_to(10.0)  # same instant is fine
        assert clock.now() == 10.0

    def test_advance_backwards_rejected(self):
        clock = VirtualClock(start_s=5.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(1.0)

    def test_sleep_until_advances_without_blocking(self):
        clock = VirtualClock()

        async def scenario():
            await clock.sleep_until(100.0)
            return clock.now()

        assert asyncio.run(scenario()) == 100.0

    def test_sleep_until_past_instant_is_noop(self):
        clock = VirtualClock(start_s=50.0)

        async def scenario():
            await clock.sleep_until(10.0)
            return clock.now()

        assert asyncio.run(scenario()) == 50.0

    def test_work_stopwatch_frozen(self):
        """Zero work-seconds is what makes replays never observe lag."""
        clock = VirtualClock()
        clock.advance_to(1e6)
        assert clock.work_seconds() == 0.0


class TestMonotonicClock:
    def test_not_virtual(self):
        assert not MonotonicClock().is_virtual

    def test_time_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            MonotonicClock(time_scale=0.0)
        with pytest.raises(ValueError):
            MonotonicClock(time_scale=-2.0)

    def test_now_starts_near_zero_and_advances(self):
        clock = MonotonicClock(time_scale=1000.0)
        first = clock.now()
        assert first >= 0.0

        async def scenario():
            await asyncio.sleep(0.01)
            return clock.now()

        later = asyncio.run(scenario())
        assert later > first

    def test_sleep_until_past_instant_returns_immediately(self):
        clock = MonotonicClock(time_scale=1.0)

        async def scenario():
            await clock.sleep_until(0.0)  # already reached

        asyncio.run(scenario())

    def test_sleep_until_reaches_target(self):
        clock = MonotonicClock(time_scale=100.0)

        async def scenario():
            await clock.sleep_until(2.0)  # 2 scenario s = 20 real ms
            return clock.now()

        assert asyncio.run(scenario()) >= 2.0

    def test_work_stopwatch_advances(self):
        clock = MonotonicClock(time_scale=60.0)
        a = clock.work_seconds()
        b = clock.work_seconds()
        assert b >= a
