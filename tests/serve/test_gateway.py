"""The serve gateway: replay identity, the deadline scheduler, health."""

import asyncio

import pytest

from repro.core.service import Service
from repro.ops import FleetController
from repro.ops.events import (
    GpuFailure,
    GpuRecovery,
    RateEpoch,
    ServiceArrival,
    SpotPreemptionWave,
    merge_timeline,
)
from repro.serve import (
    IntakeItem,
    ServeGateway,
    VirtualClock,
    replay_gateway,
    replay_identity_checked,
    timeline_source,
)
from repro.serve.clock import Clock


@pytest.fixture
def services():
    return [
        Service("a", "resnet-50", slo_latency_ms=250, request_rate=2000),
        Service("b", "mobilenetv2", slo_latency_ms=150, request_rate=4000),
        Service("c", "densenet-121", slo_latency_ms=200, request_rate=1500),
    ]


def busy_timeline():
    """Every event family, including a wave whose restores land through
    the controller's pending queue (the gateway must poll it)."""
    return merge_timeline(
        [GpuFailure(time_s=25.0, event_id="f0", draw=0.2)],
        [SpotPreemptionWave(time_s=40.0, event_id="w0", fraction=0.1,
                            draw=0.5, restore_delay_s=30.0)],
        [RateEpoch(time_s=50.0, service_id="b", rate=9000.0)],
        [ServiceArrival(time_s=60.0, service_id="n", model="resnet-101",
                        request_rate=200.0, slo_latency_ms=300.0)],
        [GpuRecovery(time_s=75.0, ref="f0")],
    )


def arrivals(t, n, start=0):
    """``n`` same-instant arrivals: structural churn past the 50% full-
    replan threshold of a three-service fleet."""
    return [
        ServiceArrival(time_s=t, service_id=f"new{start + i}",
                       model="resnet-50", request_rate=300.0,
                       slo_latency_ms=300.0)
        for i in range(n)
    ]


class FakeLiveClock(Clock):
    """Live-mode semantics with test-controlled time: ``now()`` starts
    wherever the test pins it (creating lag against older event stamps)
    and the work stopwatch ticks a fixed amount per read."""

    is_virtual = False

    def __init__(self, now=0.0):
        self._now = now
        self._work = 0.0

    def now(self):
        return self._now

    async def sleep_until(self, t):
        if t > self._now:
            self._now = t
        await asyncio.sleep(0)

    def work_seconds(self):
        self._work += 0.001
        return self._work


def run_live(profiles, services, events, clock, horizon_s=200.0, **kw):
    gateway = ServeGateway(
        FleetController(profiles), services, horizon_s, clock, **kw
    )
    report = asyncio.run(gateway.run(timeline_source(events)))
    return gateway, report


class TestReplayIdentity:
    def test_replay_matches_offline_bit_for_bit(self, profiles, services):
        """The acceptance property: the virtual-clock gateway's report
        doc equals the offline controller's on the same timeline."""
        timeline = busy_timeline()
        gateway_report = replay_gateway(
            services, timeline, 100.0, measure_s=0.2, profiles=profiles
        )
        offline = FleetController(profiles).run(
            services, timeline, 100.0, measure_s=0.2
        )
        assert gateway_report.to_doc() == offline.to_doc()

    def test_replay_identity_checked_passes(self, profiles, services):
        gw, offline = replay_identity_checked(
            services, busy_timeline(), 100.0, measure_s=0.2,
            profiles=profiles,
        )
        assert [r.fingerprint for r in gw.intervals] == [
            r.fingerprint for r in offline.intervals
        ]
        assert [r.sim_fingerprint for r in gw.intervals] == [
            r.sim_fingerprint for r in offline.intervals
        ]

    def test_deadline_budget_never_defers_under_virtual_clock(
        self, profiles, services
    ):
        """A replay spends zero work-seconds, so even a vanishingly small
        budget defers nothing and identity still holds."""
        timeline = merge_timeline(busy_timeline(), arrivals(30.0, 3))
        controller = FleetController(profiles)
        gateway = ServeGateway(
            controller, services, 100.0, VirtualClock(),
            measure_s=0.2, deadline_budget_s=1e-9,
        )
        report = asyncio.run(gateway.run(timeline_source(timeline)))
        assert gateway.health.deferrals == 0
        offline = FleetController(profiles).run(
            services, timeline, 100.0, measure_s=0.2
        )
        assert report.to_doc() == offline.to_doc()

    def test_empty_stream_still_bootstraps(self, profiles, services):
        report = replay_gateway(services, (), 100.0, profiles=profiles)
        assert len(report.intervals) == 1
        assert report.intervals[0].path == "full"
        assert report.intervals[0].duration_s == 100.0

    def test_events_at_or_past_horizon_dropped(self, profiles, services):
        timeline = [
            RateEpoch(time_s=10.0, service_id="a", rate=3000.0),
            RateEpoch(time_s=100.0, service_id="a", rate=1.0),  # == horizon
            RateEpoch(time_s=150.0, service_id="a", rate=2.0),
        ]
        controller = FleetController(profiles)
        gateway = ServeGateway(controller, services, 100.0, VirtualClock())
        report = asyncio.run(gateway.run(timeline_source(timeline)))
        assert gateway.health.dropped_beyond_horizon == 2
        assert [r.time_s for r in report.intervals] == [0.0, 10.0]

    def test_validation(self, profiles, services):
        controller = FleetController(profiles)
        with pytest.raises(ValueError, match="deadline budget"):
            ServeGateway(controller, services, 100.0,
                         deadline_budget_s=0.0)
        with pytest.raises(ValueError, match="max_deferrals"):
            ServeGateway(controller, services, 100.0, max_deferrals=0)
        with pytest.raises(ValueError, match="snapshot_every"):
            ServeGateway(controller, services, 100.0, snapshot_every=-1)


class TestDeadlineScheduler:
    def test_lagged_full_replan_defers_then_force_flushes(
        self, profiles, services
    ):
        """Scenario time far past a structural batch: parked, and — with
        nothing else due — force-applied when the stream closes."""
        clock = FakeLiveClock(now=100.0)
        gateway, report = run_live(
            profiles, services, arrivals(10.0, 2), clock,
            deadline_budget_s=1.0,
        )
        assert gateway.health.deferrals >= 1
        assert gateway.health.max_deferred_depth == 2
        assert gateway.health.forced_flushes == 1
        assert gateway.health.deferred_depth == 0  # nothing left parked
        # the flush really landed: both arrivals were applied
        assert gateway.health.events_applied == 2
        assert report.intervals[-1].num_gpus > 0

    def test_within_budget_applies_on_time(self, profiles, services):
        clock = FakeLiveClock(now=100.0)
        gateway, _ = run_live(
            profiles, services, arrivals(10.0, 2), clock,
            deadline_budget_s=1000.0,  # lag of 90 s is within budget
        )
        assert gateway.health.deferrals == 0
        assert gateway.health.forced_flushes == 0

    def test_cheap_deltas_never_defer(self, profiles, services):
        """Rate deltas ride the incremental path; lag is irrelevant."""
        clock = FakeLiveClock(now=100.0)
        events = [RateEpoch(time_s=10.0, service_id="a", rate=5000.0),
                  RateEpoch(time_s=20.0, service_id="b", rate=1000.0)]
        gateway, _ = run_live(
            profiles, services, events, clock, deadline_budget_s=1e-6
        )
        assert gateway.health.deferrals == 0

    def test_urgent_events_never_deferred(self, profiles, services):
        """Lost hardware cannot wait, whatever the lag."""
        clock = FakeLiveClock(now=100.0)
        events = merge_timeline(
            arrivals(10.0, 2),
            [GpuFailure(time_s=10.0, event_id="f0", draw=0.1)],
        )
        gateway, _ = run_live(
            profiles, services, events, clock, deadline_budget_s=1e-6
        )
        assert gateway.health.deferrals == 0
        assert gateway.health.events_applied == 3

    def test_max_deferrals_caps_starvation(self, profiles, services):
        """A second structural batch lands because the streak cap forces
        the (coalesced) re-plan through the blown budget."""
        clock = FakeLiveClock(now=100.0)
        events = arrivals(10.0, 2) + arrivals(20.0, 2, start=2)
        gateway, _ = run_live(
            profiles, services, events, clock,
            deadline_budget_s=1.0, max_deferrals=1,
        )
        assert gateway.health.deferrals == 1
        assert gateway.health.forced_flushes == 0  # applied by the cap
        assert gateway.health.events_applied == 4
        assert gateway.health.max_deferred_depth == 2

    def test_deferred_batches_coalesce(self, profiles, services):
        """Three structural instants, generous cap: everything coalesces
        into the shutdown flush as one batch."""
        clock = FakeLiveClock(now=100.0)
        events = (arrivals(10.0, 2) + arrivals(20.0, 2, start=2)
                  + arrivals(30.0, 2, start=4))
        gateway, _ = run_live(
            profiles, services, events, clock,
            deadline_budget_s=1.0, max_deferrals=8,
        )
        assert gateway.health.deferrals == 3
        assert gateway.health.max_deferred_depth == 6
        assert gateway.health.forced_flushes == 1
        assert gateway.health.events_applied == 6

    def test_late_event_clamped_forward(self, profiles, services):
        """An event stamped before the last applied instant steps at the
        clamped instant instead of raising OutOfOrderEventError."""
        controller = FleetController(profiles)
        gateway = ServeGateway(
            controller, services, 200.0, FakeLiveClock(now=100.0)
        )
        gateway.report = controller.begin(services, 200.0)
        gateway._apply(0.0, [], [])
        on_time = RateEpoch(time_s=50.0, service_id="a", rate=3000.0)
        gateway._apply(50.0, [IntakeItem(on_time)], [on_time])
        late = RateEpoch(time_s=5.0, service_id="b", rate=2000.0)
        gateway._apply(5.0, [IntakeItem(late)], [late])
        report = controller.finish()
        assert gateway.health.late_steps == 1
        assert [r.time_s for r in report.intervals] == [0.0, 50.0, 50.0]

    def test_live_run_records_reaction_latency(self, profiles, services):
        clock = FakeLiveClock()
        events = [RateEpoch(time_s=10.0, service_id="a", rate=5000.0)]
        gateway, _ = run_live(profiles, services, events, clock)
        assert gateway.health.reactions_s
        assert all(r > 0 for r in gateway.health.reactions_s)
        pct = gateway.health.reaction_percentiles()
        assert set(pct) == {"p50_ms", "p95_ms", "p99_ms"}
        assert pct["p50_ms"] <= pct["p99_ms"]

    def test_virtual_replay_records_no_reactions(self, profiles, services):
        controller = FleetController(profiles)
        gateway = ServeGateway(controller, services, 100.0, VirtualClock())
        asyncio.run(gateway.run(timeline_source(
            [RateEpoch(time_s=10.0, service_id="a", rate=5000.0)]
        )))
        assert gateway.health.reactions_s == []
        assert "reaction_p50_ms" not in gateway.health.to_doc()


class TestSnapshot:
    def test_snapshot_shape_after_replay(self, profiles, services):
        controller = FleetController(profiles)
        gateway = ServeGateway(controller, services, 100.0, VirtualClock(),
                               measure_s=0.1)
        asyncio.run(gateway.run(timeline_source(busy_timeline())))
        snap = gateway.snapshot()
        assert snap["virtual_clock"] is True
        assert snap["intake_depth"] == 0
        assert snap["health"]["steps"] == gateway.health.steps
        assert snap["report"]["intervals"]  # materialized OpsReport doc

    def test_snapshot_on_demand_before_any_step(self, profiles, services):
        gateway = ServeGateway(
            FleetController(profiles), services, 100.0, VirtualClock()
        )
        snap = gateway.snapshot()
        assert snap["report"] is None
        assert snap["health"]["steps"] == 0
