"""Unit tests for the Profiler (SIII-C) and the profile store."""

import pytest

from repro.models.perf import PerfModel
from repro.models.zoo import get_model
from repro.profiler import ProfileEntry, ProfileTable, Profiler, profile_workloads


class TestProfiler:
    def test_grid_dimensions(self, profiles):
        table = profiles["resnet-50"]
        assert table.instance_sizes() == (1, 2, 3, 4, 7)
        batches = {e.batch_size for e in table}
        assert batches == {1, 2, 4, 8, 16, 32, 64, 128}

    def test_oom_points_absent(self, profiles):
        """BERT-large at batch 128 x 3 procs cannot fit a 10 GB slice."""
        table = profiles["bert-large"]
        assert table.lookup(1, 128, 3) is None
        assert table.lookup(7, 128, 3) is not None

    def test_deterministic_noise(self):
        a = Profiler(noise=0.01).profile(get_model("resnet-50"))
        b = Profiler(noise=0.01).profile(get_model("resnet-50"))
        for ea, eb in zip(a, b):
            assert ea == eb

    def test_zero_noise_matches_model(self):
        table = Profiler(noise=0.0).profile(get_model("resnet-50"))
        perf = PerfModel(get_model("resnet-50"))
        e = table.lookup(2, 16, 2)
        assert e.throughput == pytest.approx(perf.throughput(2, 16, 2))
        assert e.latency_ms == pytest.approx(perf.latency_ms(2, 16, 2))

    def test_cache_returns_same_object(self):
        p = Profiler()
        assert p.profile(get_model("vgg-16")) is p.profile(get_model("vgg-16"))

    def test_profile_workloads_selection(self):
        tables = profile_workloads(["resnet-50", "vgg-16"])
        assert set(tables) == {"resnet-50", "vgg-16"}

    def test_profile_workloads_full_zoo(self, profiles):
        assert len(profiles) == 11

    def test_estimated_cost_positive(self):
        p = Profiler()
        cost = p.estimated_profiling_cost_s(get_model("resnet-50"))
        assert cost > 0


class TestProfileTable:
    def entry(self, g=1, b=1, p=1, tp=100.0, lat=10.0, model="m"):
        return ProfileEntry(
            model=model,
            instance_size=g,
            batch_size=b,
            num_processes=p,
            latency_ms=lat,
            throughput=tp,
            memory_gb=1.0,
            sm_activity=0.9,
        )

    def test_add_and_lookup(self):
        t = ProfileTable("m")
        t.add(self.entry())
        assert t.lookup(1, 1, 1).throughput == 100.0
        assert t.lookup(1, 2, 1) is None

    def test_wrong_model_rejected(self):
        t = ProfileTable("m")
        with pytest.raises(ValueError):
            t.add(self.entry(model="other"))

    def test_duplicate_rejected(self):
        t = ProfileTable("m")
        t.add(self.entry())
        with pytest.raises(ValueError):
            t.add(self.entry())

    def test_under_latency_is_strict(self):
        t = ProfileTable("m")
        t.add(self.entry(b=1, lat=10.0))
        t.add(self.entry(b=2, lat=20.0))
        assert len(t.under_latency(20.0)) == 1

    def test_entries_for_size(self):
        t = ProfileTable("m")
        t.add(self.entry(g=1))
        t.add(self.entry(g=2))
        assert len(t.entries_for_size(2)) == 1

    def test_filtered(self):
        t = ProfileTable("m")
        t.add(self.entry(tp=10))
        t.add(self.entry(b=2, tp=1000))
        assert len(t.filtered(lambda e: e.throughput > 100)) == 1

    def test_json_roundtrip(self, profiles):
        original = profiles["inceptionv3"]
        restored = ProfileTable.from_json(original.to_json())
        assert restored.model == original.model
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert a == b

    def test_triplet_and_tp_per_gpc(self):
        e = self.entry(g=2, b=4, p=3, tp=500.0)
        assert e.triplet == (2, 4, 3)
        assert e.throughput_per_gpc == 250.0
