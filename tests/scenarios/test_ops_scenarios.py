"""S12-S14 and the ops bench run: registration and determinism."""

import pytest

from repro.ops.events import (
    GpuFailure,
    RateEpoch,
    ServiceArrival,
    SloChange,
    SpotPreemptionWave,
)
from repro.scenarios import get_scenario, scenario_services
from repro.scenarios.ops import (
    OPS_SCENARIO_NAMES,
    bench_ops_run,
    ops_run,
)


class TestRegistration:
    def test_registered_in_registry(self):
        for name in OPS_SCENARIO_NAMES:
            sc = get_scenario(name)
            services = scenario_services(sc)
            assert len(services) == len(sc.loads)
            assert len({s.id for s in services}) == len(services)

    def test_unknown_run_rejected(self):
        with pytest.raises(KeyError):
            ops_run("S99")

    def test_run_services_match_registry(self):
        run = ops_run("S12")
        assert [s.id for s in run.services] == [
            s.id for s in scenario_services("S12")
        ]


class TestDeterminism:
    @pytest.mark.parametrize("name", OPS_SCENARIO_NAMES)
    def test_runs_reproducible(self, name):
        a, b = ops_run(name), ops_run(name)
        assert a.timeline == b.timeline
        assert [s.id for s in a.services] == [s.id for s in b.services]

    def test_seed_changes_timeline(self):
        assert ops_run("S12", seed=1).timeline != ops_run("S12", seed=2).timeline


class TestShapes:
    def test_s12_is_churn_and_renegotiation(self):
        run = ops_run("S12")
        kinds = {e.kind for e in run.timeline}
        assert "ServiceArrival" in kinds and "ServiceDeparture" in kinds
        assert "SloChange" in kinds
        assert not any(isinstance(e, GpuFailure) for e in run.timeline)

    def test_s13_is_diurnal_plus_chaos(self):
        run = ops_run("S13")
        kinds = {e.kind for e in run.timeline}
        assert {"RateEpoch", "GpuFailure", "GpuRecovery",
                "SpotPreemptionWave"} <= kinds
        rate_events = sum(isinstance(e, RateEpoch) for e in run.timeline)
        assert rate_events >= 14 * len(run.services)  # diurnal epochs

    def test_s14_is_preemption_waves(self):
        run = ops_run("S14")
        assert all(isinstance(e, SpotPreemptionWave) for e in run.timeline)
        assert all(e.restore_delay_s is not None for e in run.timeline)
        assert len(run.timeline) >= 4

    def test_bench_run_meets_acceptance_shape(self):
        """The recorded BENCH_ops tier: >=20 events mixing failures,
        preemptions, and churn, at any fleet size."""
        run = bench_ops_run(100)
        assert run.num_events >= 20
        kinds = {e.kind for e in run.timeline}
        assert {"GpuFailure", "SpotPreemptionWave", "ServiceArrival",
                "ServiceDeparture"} <= kinds
        big = bench_ops_run(1000)
        assert len(big.services) == 1000
        # draw-resolved GPU events: the same disturbance schedule scales
        # across tiers (victims resolve against each tier's own fleet)
        assert [e.kind for e in big.timeline] == [e.kind for e in run.timeline]

    def test_bench_run_reproducible(self):
        assert bench_ops_run(200).timeline == bench_ops_run(200).timeline
