"""Unit tests: Table IV transcription and the scaling sweep."""

import pytest

from repro.scenarios import get_scenario, scaled_scenario, scenario_services
from repro.scenarios.table4 import SCENARIO_NAMES, SCENARIOS


class TestTableIV:
    def test_six_scenarios(self):
        assert SCENARIO_NAMES == ("S1", "S2", "S3", "S4", "S5", "S6")

    def test_s1_has_six_models(self):
        assert len(SCENARIOS["S1"].loads) == 6
        assert "densenet-169" not in SCENARIOS["S1"].models  # N/A in Table IV

    def test_s2_through_s6_have_eleven(self):
        for name in ("S2", "S3", "S4", "S5", "S6"):
            assert len(SCENARIOS[name].loads) == 11

    @pytest.mark.parametrize(
        "scenario,model,rate,lat",
        [
            ("S1", "bert-large", 19, 6434),
            ("S1", "vgg-19", 354, 397),
            ("S2", "resnet-50", 829, 205),
            ("S3", "mobilenetv2", 1546, 113),
            ("S4", "inceptionv3", 1576, 282),
            ("S5", "bert-large", 843, 2153),
            ("S5", "mobilenetv2", 5009, 59),
            ("S6", "mobilenetv2", 7513, 167),
            ("S6", "vgg-19", 2296, 397),
        ],
    )
    def test_exact_cells(self, scenario, model, rate, lat):
        load = SCENARIOS[scenario].load_for(model)
        assert load.request_rate == rate
        assert load.slo_latency_ms == lat

    def test_s3_s4_share_slos(self):
        for m in SCENARIOS["S3"].models:
            assert (
                SCENARIOS["S3"].load_for(m).slo_latency_ms
                == SCENARIOS["S4"].load_for(m).slo_latency_ms
            )

    def test_s2_s6_share_slos(self):
        for m in SCENARIOS["S2"].models:
            assert (
                SCENARIOS["S2"].load_for(m).slo_latency_ms
                == SCENARIOS["S6"].load_for(m).slo_latency_ms
            )

    def test_total_rate_ordering(self):
        totals = [SCENARIOS[n].total_rate for n in SCENARIO_NAMES]
        assert totals == sorted(totals)  # S1 lightest ... S6 heaviest

    def test_lookup_case_insensitive(self):
        assert get_scenario("s3").name == "S3"

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("S99")


class TestServiceBuilding:
    def test_services_fresh_each_call(self):
        a = scenario_services("S2")
        b = scenario_services("S2")
        assert a[0] is not b[0]

    def test_services_match_loads(self):
        services = scenario_services("S5")
        sc = get_scenario("S5")
        for svc in services:
            load = sc.load_for(svc.model)
            assert svc.request_rate == load.request_rate
            assert svc.slo_latency_ms == load.slo_latency_ms


class TestScaling:
    def test_factor_one_is_identity(self):
        assert len(scaled_scenario(1)) == 11

    def test_factor_k_multiplies(self):
        services = scaled_scenario(4)
        assert len(services) == 44
        ids = {s.id for s in services}
        assert len(ids) == 44  # distinct service ids

    def test_copies_share_load_shape(self):
        services = scaled_scenario(3)
        berts = [s for s in services if s.model == "bert-large"]
        assert len(berts) == 3
        assert all(s.request_rate == berts[0].request_rate for s in berts)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            scaled_scenario(0)

    def test_custom_base(self):
        services = scaled_scenario(2, base="S1")
        assert len(services) == 12


class TestFleetScenarios:
    def test_s9_s10_registered(self):
        assert len(get_scenario("S9").loads) == 1000
        assert len(get_scenario("S10").loads) == 200

    def test_s11_is_high_rate_s9(self):
        from repro.scenarios.fleet import S11_DURATION_S, S11_RATE_SCALE

        s9, s11 = get_scenario("S9").loads, get_scenario("S11").loads
        assert len(s11) == len(s9)
        # same fleet composition, every rate scaled up
        for a, b in zip(s9, s11):
            assert b.model == a.model
            assert b.slo_latency_ms == a.slo_latency_ms
            # both rates were rounded to one decimal, before/after scaling
            assert b.request_rate == pytest.approx(
                a.request_rate * S11_RATE_SCALE,
                abs=0.05 * (1.0 + S11_RATE_SCALE) + 0.01,
            )
        # the replay exceeds a million requests over its window
        total = sum(load.request_rate for load in s11)
        assert total * S11_DURATION_S >= 1_000_000

    def test_fleet_is_deterministic(self):
        from repro.scenarios.fleet import fleet_loads

        assert fleet_loads(250) == fleet_loads(250)
        assert fleet_loads(250, seed=1) != fleet_loads(250, seed=2)
        # rate_scale only rescales; the sampled fleet is the same
        assert fleet_loads(250, rate_scale=1.0) == fleet_loads(250)

    def test_fleet_services_have_unique_ids(self):
        services = scenario_services("S9")
        assert len({s.id for s in services}) == len(services) == 1000

    def test_fleet_slos_never_tightened(self):
        """Relaxed-only SLO jitter keeps every cell feasible by design."""
        from repro.scenarios.fleet import _base_loads, fleet_loads

        floor = {}
        for load in _base_loads():
            cur = floor.get(load.model)
            floor[load.model] = min(cur, load.slo_latency_ms) if cur else load.slo_latency_ms
        for load in fleet_loads(500):
            assert load.slo_latency_ms >= floor[load.model]
            assert load.request_rate > 0

    def test_fleet_traces_cover_every_service(self):
        from repro.scenarios import fleet_services, fleet_traces

        services = fleet_services(50)
        traces = fleet_traces(services, epochs=3)
        assert {t.service_id for t in traces} == {s.id for s in services}
        assert all(len(t.epochs) == 3 for t in traces)

    def test_single_occurrence_scenarios_keep_model_ids(self):
        """The id-uniquifier must not rename Table-IV services."""
        services = scenario_services("S2")
        assert [s.id for s in services] == [s.model for s in services]
