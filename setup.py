"""Legacy setup shim.

The sandboxed evaluation environment has setuptools but no ``wheel``
package, so PEP-660 editable installs fail; this file lets
``pip install -e . --no-build-isolation`` (or ``--no-use-pep517``) fall
back to ``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
