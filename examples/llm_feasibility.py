#!/usr/bin/env python
"""The Discussion-section LLM study: can spatial sharing survive big models?

The paper argues (SV) that although LLM memory appetites shrink the set of
usable MIG segments, compact models (7 GB LLaMA-class, QLoRA'd Guanacos)
plus bigger-memory generations (H200 141 GB, B200 192 GB) keep spatial GPU
sharing viable.  This example quantifies that argument with the substrate:
for each workload and GPU generation, which instance sizes can host it,
and what does a ParvaGPU-style segment plan look like on each board?

Run:  python examples/llm_feasibility.py
"""

from repro.gpu.generations import GENERATIONS
from repro.gpu.mig import INSTANCE_SIZES
from repro.models.perf import PerfModel
from repro.models.zoo import ModelSpec

# LLM-class serving workloads (weights sized via the fp32-equivalent
# parameter count so ModelSpec.weights_gb lands on the cited footprints).
LLAMA_7B_LIGHT = ModelSpec(  # the paper's "7GB of memory" lightweight LLaMA
    name="llama-7b-light", params_millions=1400.0, t_inf=18.0, b_half=1.0,
    o0=2.0, o1=1.2, o_exp=0.7, eta=1.0, act_gb_per_req=0.25, bw_intensity=0.7,
)
GUANACO_7B = ModelSpec(  # QLoRA Guanaco-7B: ~5 GB
    name="guanaco-7b", params_millions=1000.0, t_inf=16.0, b_half=1.0,
    o0=2.0, o1=1.2, o_exp=0.7, eta=1.0, act_gb_per_req=0.22, bw_intensity=0.7,
)
GUANACO_65B = ModelSpec(  # QLoRA Guanaco-65B: ~41 GB
    name="guanaco-65b", params_millions=8200.0, t_inf=95.0, b_half=1.0,
    o0=4.0, o1=2.0, o_exp=0.7, eta=1.0, act_gb_per_req=1.2, bw_intensity=0.8,
)

WORKLOADS = (LLAMA_7B_LIGHT, GUANACO_7B, GUANACO_65B)
BATCH, PROCS = 4, 1


def main() -> None:
    order = ["a100-40gb", "a100-80gb", "h100-80gb", "h200-141gb", "b200-192gb"]
    print("feasible MIG segment sizes (batch 4, 1 process):\n")
    print(f"{'workload':<16} {'mem GB':>7} " + " ".join(f"{g:>12}" for g in order))
    for spec in WORKLOADS:
        row = [f"{spec.name:<16}"]
        need = PerfModel(spec).memory_gb(BATCH, PROCS)
        row.append(f"{need:>7.1f}")
        for gen_name in order:
            gen = GENERATIONS[gen_name]
            perf = PerfModel(spec, generation=gen)
            sizes = [s for s in INSTANCE_SIZES if perf.fits(s, BATCH, PROCS)]
            row.append(f"{('/'.join(map(str, sizes)) or '-'): >12}")
        print(" ".join(row))

    print(
        "\nReading: the 7 GB-class models fit a single 1g slice from the"
        "\nA100-80GB onward (7-way spatial sharing); the 41 GB Guanaco-65B"
        "\nneeds at least a 3g slice of an H200 or B200 — exactly the"
        "\npaper's claim that newer generations keep spatial sharing"
        "\nviable even for large generative models."
    )

    # How many concurrent tenants per GPU does each generation admit?
    print(f"\n{'generation':<12} {'max 7GB-LLM tenants/GPU':>25}")
    for gen_name in order:
        gen = GENERATIONS[gen_name]
        perf = PerfModel(LLAMA_7B_LIGHT, generation=gen)
        tenants = 7 if perf.fits(1, BATCH, PROCS) else (
            3 if perf.fits(2, BATCH, PROCS) else
            2 if perf.fits(3, BATCH, PROCS) else
            1 if perf.fits(7, BATCH, PROCS) else 0
        )
        print(f"{gen_name:<12} {tenants:>25}")


if __name__ == "__main__":
    main()
