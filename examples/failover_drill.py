#!/usr/bin/env python
"""Failover drill: lose a GPU mid-day, keep serving.

Deploys Scenario 2, kills the busiest GPU, and walks through the recovery
the SIII-F machinery enables: lost segments are relocated into surviving
holes (or a fresh GPU), untouched services never stop, and the
reconfiguration cost model prices the blast radius.

Run:  python examples/failover_drill.py
"""

from repro import DeploymentManager, ParvaGPU, profile_workloads, scenario_services
from repro.core.failover import FailoverController
from repro.metrics import external_fragmentation


def main() -> None:
    profiles = profile_workloads()
    services = scenario_services("S2")
    placement = ParvaGPU(profiles).schedule(services)
    manager = DeploymentManager(profiles)
    manager.deploy(placement)
    print(f"deployed S2 on {placement.num_gpus} GPUs")

    victim = max(placement.gpus, key=lambda g: g.used_gpcs)
    print(
        f"\n*** GPU {victim.gpu_id} fails "
        f"({len(victim.segments)} segments, {victim.used_gpcs:g} GPCs) ***"
    )

    ctrl = FailoverController(profiles, manager)
    result = ctrl.fail_gpu(victim.gpu_id, services)

    print(f"affected services : {', '.join(result.affected_services)}")
    print("lost capacity     : " + ", ".join(
        f"{sid} -{rate:.0f} req/s" for sid, rate in result.lost_capacity.items()
    ))
    print(f"fleet             : {result.gpus_before} -> {result.gpus_after} GPUs")
    print(f"recovery MIG work : {result.cost.total_work_s:.1f} s serial")
    print(f"worst downtime    : {result.cost.max_downtime_s:.1f} s "
          f"({len(result.cost.disrupted_services)} services disrupted, "
          f"0 s with {result.cost.shadow_gpus} shadow GPU(s))")
    untouched = sorted(
        sid for sid, d in result.cost.downtime_s.items() if d == 0.0
    )
    print(f"kept serving      : {', '.join(untouched)}")
    print(
        f"fragmentation     : "
        f"{100 * external_fragmentation(result.placement):.1f}% after recovery"
    )
    for svc in services:
        assert result.placement.total_capacity(svc.id) >= svc.request_rate
    print("\nall services back at full planned capacity.")


if __name__ == "__main__":
    main()
