#!/usr/bin/env python
"""SLO update without disturbing co-tenants (SIII-F).

A tenant tightens its SLO mid-day.  ParvaGPU re-runs the Segment
Configurator for that one service, relocates only its segments, and
re-optimizes — the reconfiguration plan shows how many instances stayed
live versus how many MIG operations were needed.

Run:  python examples/slo_reconfiguration.py
"""

from repro import DeploymentManager, ParvaGPU, Service, profile_workloads


def main() -> None:
    profiles = profile_workloads(["resnet-50", "inceptionv3", "vgg-16"])
    services = [
        Service("search-ranker", "resnet-50", slo_latency_ms=220, request_rate=900),
        Service("photo-tagger", "inceptionv3", slo_latency_ms=400, request_rate=600),
        Service("ad-scorer", "vgg-16", slo_latency_ms=500, request_rate=400),
    ]

    scheduler = ParvaGPU(profiles)
    placement = scheduler.schedule(services)
    manager = DeploymentManager(profiles)
    plan = manager.deploy(placement)
    print(
        f"initial deployment: {placement.num_gpus} GPUs, "
        f"{len(plan.create)} instances created"
    )
    for p in placement.gpus:
        print(
            f"  GPU {p.gpu_id}: "
            + ", ".join(f"{s.service_id}@{s.start}({s.gpcs:g}g)" for s in p.segments)
        )

    # The ranker's product team tightens its latency target by 2x and
    # traffic grows 30% — no re-profiling needed (SIII-F).
    changed = services[0]
    new_placement, reconfig = manager.update_slo(
        services, changed, new_slo_ms=110.0, new_rate=2700.0
    )
    print(
        f"\nafter SLO update ({changed.id}: 220 ms -> 110 ms, 900 -> 2700 req/s):"
    )
    print(f"  GPUs: {new_placement.num_gpus}")
    print(f"  instances untouched (kept serving): {len(reconfig.unchanged)}")
    print(f"  MIG operations: {len(reconfig.destroy)} destroy + {len(reconfig.create)} create")
    for p in new_placement.gpus:
        print(
            f"  GPU {p.gpu_id}: "
            + ", ".join(f"{s.service_id}@{s.start}({s.gpcs:g}g)" for s in p.segments)
        )
    untouched = {s.id for s in services} - {changed.id}
    print(f"\nservices that kept serving throughout: {sorted(untouched)}")


if __name__ == "__main__":
    main()
