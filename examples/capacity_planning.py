#!/usr/bin/env python
"""Capacity planning with the predictor (SIV-D).

A provider wants to consolidate ever more tenants onto one fleet and asks
each framework's predictor "how many GPUs will k copies of the S5 tenant
mix need, and how long will scheduling take?" — the experiment behind the
paper's Figures 10/11, runnable without any physical GPU.

Run:  python examples/capacity_planning.py [max_factor]
"""

import sys

from repro import Predictor, make_framework, profile_workloads, scaled_scenario


def main(max_factor: int = 4) -> None:
    profiles = profile_workloads()
    frameworks = ["gpulet", "mig-serving", "parvagpu-single", "parvagpu"]
    print(f"{'factor':>6} " + " ".join(f"{fw:>18}" for fw in frameworks))
    print(f"{'':>6} " + " ".join(f"{'GPUs / delay ms':>18}" for _ in frameworks))
    for k in range(1, max_factor + 1):
        cells = []
        for fw_name in frameworks:
            predictor = Predictor(make_framework(fw_name, profiles))
            pred = predictor.predict(scaled_scenario(k))
            cells.append(f"{pred.num_gpus:>6} / {pred.scheduling_delay_ms:8.1f}")
        print(f"{k:>6} " + " ".join(f"{c:>18}" for c in cells))
    print(
        "\nMIG-serving's joint sizing+placement search blows up with tenant"
        "\ncount while ParvaGPU's two-stage decomposition stays in milliseconds."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
