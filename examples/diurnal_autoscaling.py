#!/usr/bin/env python
"""Trace-driven autoscaling over a simulated day.

Three services ride a diurnal load curve (one with an afternoon flash
surge).  The autoscaler re-runs ParvaGPU at every epoch where rates moved,
deploys incrementally (unchanged services stay live), and prices every
transition with the SIII-F shadow-process cost model.

Run:  python examples/diurnal_autoscaling.py
"""

from repro import Service, profile_workloads
from repro.core.autoscaler import Autoscaler
from repro.sim.traces import diurnal_trace, surge_trace


def main() -> None:
    profiles = profile_workloads(["resnet-50", "inceptionv3", "mobilenetv2"])
    services = [
        Service("feed-ranker", "resnet-50", slo_latency_ms=220, request_rate=3200),
        Service("photo-tags", "inceptionv3", slo_latency_ms=400, request_rate=2600),
        Service("thumbnails", "mobilenetv2", slo_latency_ms=120, request_rate=5500),
    ]
    traces = [
        diurnal_trace("feed-ranker", base_rate=3200, amplitude=0.6, epochs=12),
        diurnal_trace("photo-tags", base_rate=2600, amplitude=0.4, epochs=12,
                      phase=0.8),
        surge_trace("thumbnails", base_rate=5500, surge_factor=2.5,
                    surge_start_s=43_200, surge_end_s=57_600),
    ]

    autoscaler = Autoscaler(profiles, spare_gpus=2)
    report = autoscaler.run(services, traces)

    print(f"{'hour':>5} {'GPUs':>5} {'reconfig ops':>13} "
          f"{'kept live':>10} {'downtime':>9} {'shadowed':>9}")
    for step in report.steps:
        print(
            f"{step.time_s / 3600:>5.1f} {step.num_gpus:>5} "
            f"{step.reconfig_ops:>13} {step.unchanged_instances:>10} "
            f"{step.cost.max_downtime_s:>8.1f}s "
            f"{'yes' if step.zero_downtime else 'NO':>9}"
        )
    print(
        f"\npeak fleet {report.peak_gpus} GPUs, mean {report.mean_gpus:.1f}, "
        f"{report.total_reconfig_ops} MIG operations across the day, "
        f"shadow-GPU peak {autoscaler.shadows.peak_used}"
    )
    print(
        "Provisioning for the peak alone would rent "
        f"{report.peak_gpus} GPUs all day; trace-driven rescheduling "
        f"averages {report.mean_gpus:.1f}."
    )


if __name__ == "__main__":
    main()
