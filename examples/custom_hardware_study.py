#!/usr/bin/env python
"""Using the substrate directly: a what-if study on MIG geometry.

The paper's Discussion section argues ParvaGPU ports to any architecture
with fully-isolated partitioning.  This example drives the GPU substrate
directly — enumerating Figure 1's configurations, building layouts by
hand, and measuring how the slot rules affect packing — the kind of
exploration a systems researcher would do before porting the allocator to
a new accelerator.

Run:  python examples/custom_hardware_study.py
"""

from repro.gpu import GPU, Cluster, enumerate_configurations
from repro.gpu.mig import PROFILES
from repro.gpu.slices import largest_free_run


def main() -> None:
    print("=== the 19 legal A100 MIG configurations (Figure 1) ===")
    for idx, layout in enumerate(enumerate_configurations(), start=1):
        sizes = "+".join(str(s) for s in layout.sizes())
        wasted = 7 - layout.used_gpcs
        note = f"  ({wasted} GPC unusable)" if wasted else ""
        print(f"  config {idx:>2}: {sizes:<14}{note}")

    print("\n=== instance profiles ===")
    for size, profile in sorted(PROFILES.items()):
        print(f"  {profile.name}: {size} GPC, {profile.memory_gb} GB")

    print("\n=== why a size-3 at slot 0 is poison (SIII-E1) ===")
    gpu = GPU(0)
    gpu.create_instance(3, 0, owner="svc-a")
    print(f"  after 3@slot0: free slices {gpu.free_slice_indices()}")
    print(f"  slice 3 blocked -> largest free run {gpu.largest_free_run()}")
    gpu.destroy_all()
    gpu.create_instance(3, 4, owner="svc-a")
    print(f"  after 3@slot4: free slices {gpu.free_slice_indices()} "
          f"(a 4-GPC instance still fits at slot 0: {gpu.can_place(4, 0)})")

    print("\n=== packing head-to-head: slot rules vs naive placement ===")
    demand = [3, 3, 2, 2, 2, 1, 1]  # GPCs
    naive = Cluster()
    for i, size in enumerate(demand):
        for g in naive.gpus:
            starts = g.feasible_starts(size)
            if starts:
                g.create_instance(size, starts[0], owner=f"svc{i}")
                break
        else:
            g = naive.add_gpu()
            g.create_instance(size, g.feasible_starts(size)[0], owner=f"svc{i}")
    print(f"  naive first-start placement: {naive.used_gpu_count()} GPUs")

    ruled = Cluster()
    prefer = {3: (4,), 2: (0, 2, 4, 5), 1: (0, 1, 2, 3, 4, 5, 6)}
    for i, size in enumerate(demand):
        placed = False
        for g in ruled.gpus:
            for start in prefer[size]:
                if g.can_place(size, start):
                    g.create_instance(size, start, owner=f"svc{i}")
                    placed = True
                    break
            if placed:
                break
        if not placed:
            g = ruled.add_gpu()
            g.create_instance(size, prefer[size][0], owner=f"svc{i}")
    print(f"  paper's slot preferences:    {ruled.used_gpu_count()} GPUs")
    for g in ruled.gpus:
        print(f"    GPU {g.gpu_id}: " + ", ".join(f"{i.size}g@{i.start}" for i in g.instances))


if __name__ == "__main__":
    main()
