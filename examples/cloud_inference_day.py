#!/usr/bin/env python
"""A cloud inference provider's day: schedule all 11 Table-IV workloads.

Walks Scenario 2 (the full model zoo at moderate rates) through every
framework in the evaluation, then prints the comparison the paper's
Figures 5-9 condense: GPUs rented, internal slack, external fragmentation,
scheduling delay, and simulated SLO compliance.

Run:  python examples/cloud_inference_day.py [scenario]
"""

import sys

from repro import (
    InfeasibleScheduleError,
    all_frameworks,
    external_fragmentation,
    internal_slack,
    profile_workloads,
    scenario_services,
    simulate_placement,
)


def main(scenario: str = "S2") -> None:
    profiles = profile_workloads()
    print(f"=== scenario {scenario}: 11 DNN services, one shared GPU fleet ===\n")
    header = (
        f"{'framework':<18} {'GPUs':>4} {'slack %':>8} {'frag %':>7} "
        f"{'delay ms':>9} {'SLO %':>7}"
    )
    print(header)
    print("-" * len(header))
    for name, fw in all_frameworks(profiles).items():
        services = scenario_services(scenario)
        try:
            placement = fw.schedule(services)
        except InfeasibleScheduleError:
            print(f"{name:<18} {'cannot serve this scenario':>40}")
            continue
        report = simulate_placement(placement, services, duration_s=2.0)
        print(
            f"{name:<18} {placement.num_gpus:>4} "
            f"{100 * internal_slack(placement, report.segment_activity):>8.1f} "
            f"{100 * external_fragmentation(placement):>7.1f} "
            f"{placement.scheduling_delay_ms:>9.2f} "
            f"{100 * report.overall_compliance:>7.2f}"
        )
    print(
        "\nParvaGPU should use the fewest GPUs at the lowest slack with no"
        "\nfragmentation and full SLO compliance — the paper's headline result."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "S2")
