#!/usr/bin/env python
"""Quickstart: schedule two inference services with ParvaGPU.

Covers the full public-API loop of Fig. 2: profile the workloads once,
hand the Segment Configurator/Allocator your services + SLOs, inspect the
deployment map, and verify serving quality in the simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    ParvaGPU,
    Service,
    external_fragmentation,
    internal_slack,
    profile_workloads,
    simulate_placement,
)


def main() -> None:
    # 1. Profile once (SIII-C): every (instance, batch, procs) point.
    profiles = profile_workloads(["resnet-50", "bert-large"])

    # 2. Declare services: model + SLO latency + request rate.
    services = [
        Service("vision-api", "resnet-50", slo_latency_ms=200, request_rate=800),
        Service("nlp-api", "bert-large", slo_latency_ms=2000, request_rate=120),
    ]

    # 3. Schedule: Optimal Triplet Decision -> Demand Matching ->
    #    Segment Relocation -> Allocation Optimization.
    scheduler = ParvaGPU(profiles)
    placement = scheduler.schedule(services)

    print(f"GPUs used:              {placement.num_gpus}")
    print(f"scheduling delay:       {placement.scheduling_delay_ms:.2f} ms")
    print(f"internal slack:         {100 * internal_slack(placement):.1f}%")
    print(f"external fragmentation: {100 * external_fragmentation(placement):.1f}%")
    print()
    for svc in services:
        tri = {g: e.triplet for g, e in sorted(svc.opt_tri_array.items())}
        print(f"{svc.id}: optimal triplets (size -> (size,batch,procs)) = {tri}")
        print(
            f"  plan: {svc.num_opt_seg} x optimal {svc.opt_seg.describe()}"
            + (f" + last {svc.last_seg.describe()}" if svc.last_seg else "")
        )
    print()
    for plan in placement.gpus:
        layout = ", ".join(
            f"{s.service_id}@slot{s.start} ({s.gpcs:g} GPC, b{s.batch_size}, "
            f"p{s.num_processes})"
            for s in plan.segments
        )
        print(f"GPU {plan.gpu_id}: {layout}")

    # 4. Verify in the serving simulator: no SLO violations expected.
    report = simulate_placement(placement, services, duration_s=2.0)
    print(f"\nsimulated SLO compliance: {100 * report.overall_compliance:.2f}%")
    for sid, compliance, mean_lat, rate in report.summary_rows():
        print(f"  {sid:<12} {compliance:6.2f}%  mean {mean_lat:7.1f} ms  {rate:6.0f} req/s")


if __name__ == "__main__":
    main()
